//! Catalog: tables, rows, secondary indexes and the function registry.
//!
//! Storage is deliberately simple — heap tables as `Vec<Row>` — because the
//! paper's claims are about *executor lifecycle* costs, not storage. Single-
//! column secondary indexes (btree for point + range, hash for point only)
//! give the planner selective access paths for the paper's embedded queries
//! (`WHERE location = p.loc` style), which keeps large workloads honest: the
//! interpreted and compiled variants use the same access paths, and a
//! selective loop over a 10⁵-row table stays O(matching) instead of
//! O(table).
//!
//! Every access path returns row positions in ascending heap order (like a
//! PostgreSQL bitmap heap scan), so an index plan's output row order is
//! byte-identical to the seq-scan-plus-filter plan it replaces — that is
//! the invariant the force-on/force-off differential sweep pins.

use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;
use std::sync::Arc;

use plaway_common::{Error, Result, Type, Value};
use plaway_sql::ast::Language;

/// A table row.
pub type Row = Vec<Value>;

/// A column of a table schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    pub name: String,
    pub ty: Type,
}

/// Index access method: ordered (btree) or equality-only (hash).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexKind {
    /// Ordered index: point lookups and range scans. The default.
    #[default]
    Btree,
    /// Hash index: point lookups only.
    Hash,
}

/// `Value` ordered by [`Value::total_cmp`] so it can key an ordered map
/// (`Value` itself deliberately has no `Ord`: SQL comparison is 3-valued).
/// NULLs sort last, which `Index::range` exploits to exclude them.
#[derive(Debug, Clone, PartialEq, Eq)]
struct OrdValue(Value);

impl PartialOrd for OrdValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdValue {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Key → posting-list storage for one index.
#[derive(Debug, Clone)]
enum IndexStore {
    Hash(HashMap<Value, Vec<usize>>),
    Btree(BTreeMap<OrdValue, Vec<usize>>),
}

/// A single-column secondary index. Posting lists hold row positions in
/// ascending heap order (inserts append, rebuilds enumerate in order), so
/// lookups need no sort and range scans only merge already-sorted runs.
#[derive(Debug, Clone)]
pub struct Index {
    pub name: String,
    /// Indexed column position.
    pub column: usize,
    pub kind: IndexKind,
    store: IndexStore,
}

impl Index {
    fn build(name: String, column: usize, kind: IndexKind, rows: &[Row]) -> Self {
        let store = match kind {
            IndexKind::Hash => {
                let mut map: HashMap<Value, Vec<usize>> = HashMap::with_capacity(rows.len());
                for (i, row) in rows.iter().enumerate() {
                    map.entry(row[column].clone()).or_default().push(i);
                }
                IndexStore::Hash(map)
            }
            IndexKind::Btree => {
                let mut map: BTreeMap<OrdValue, Vec<usize>> = BTreeMap::new();
                for (i, row) in rows.iter().enumerate() {
                    map.entry(OrdValue(row[column].clone()))
                        .or_default()
                        .push(i);
                }
                IndexStore::Btree(map)
            }
        };
        Index {
            name,
            column,
            kind,
            store,
        }
    }

    /// Incremental maintenance for an appended row (`pos` is strictly
    /// larger than every position already present, keeping postings sorted).
    fn add(&mut self, key: Value, pos: usize) {
        match &mut self.store {
            IndexStore::Hash(map) => map.entry(key).or_default().push(pos),
            IndexStore::Btree(map) => map.entry(OrdValue(key)).or_default().push(pos),
        }
    }

    /// Number of distinct keys — the planner's selectivity denominator.
    pub fn distinct_keys(&self) -> usize {
        match &self.store {
            IndexStore::Hash(map) => map.len(),
            IndexStore::Btree(map) => map.len(),
        }
    }

    /// Point lookup: positions (ascending) of rows whose key equals `key`.
    pub fn lookup(&self, key: &Value) -> &[usize] {
        match &self.store {
            IndexStore::Hash(map) => map.get(key).map(|v| v.as_slice()).unwrap_or(&[]),
            IndexStore::Btree(map) => map
                .get(&OrdValue(key.clone()))
                .map(|v| v.as_slice())
                .unwrap_or(&[]),
        }
    }

    /// Translate optional `(value, inclusive)` bounds into `BTreeMap` range
    /// bounds, detecting the inverted ranges `BTreeMap::range` panics on.
    fn btree_bounds(
        lo: Option<(&Value, bool)>,
        hi: Option<(&Value, bool)>,
    ) -> Option<(Bound<OrdValue>, Bound<OrdValue>)> {
        if let (Some((l, li)), Some((h, hi_inc))) = (lo, hi) {
            match l.total_cmp(h) {
                Ordering::Greater => return None,
                Ordering::Equal if !(li && hi_inc) => return None,
                _ => {}
            }
        }
        let to_bound = |b: Option<(&Value, bool)>| match b {
            Some((v, true)) => Bound::Included(OrdValue(v.clone())),
            Some((v, false)) => Bound::Excluded(OrdValue(v.clone())),
            None => Bound::Unbounded,
        };
        Some((to_bound(lo), to_bound(hi)))
    }

    /// Range scan (btree only): positions of rows whose key lies between the
    /// bounds, returned in ascending heap order. NULL keys never match (SQL
    /// comparisons against NULL are never true). Returns `None` for a hash
    /// index, which cannot answer range predicates.
    pub fn range(
        &self,
        lo: Option<(&Value, bool)>,
        hi: Option<(&Value, bool)>,
    ) -> Option<Vec<usize>> {
        let IndexStore::Btree(map) = &self.store else {
            return None;
        };
        let Some(bounds) = Self::btree_bounds(lo, hi) else {
            return Some(Vec::new());
        };
        let mut positions: Vec<usize> = map
            .range(bounds)
            .filter(|(k, _)| !k.0.is_null())
            .flat_map(|(_, p)| p.iter().copied())
            .collect();
        // Each posting list is sorted; the concatenation across keys is not.
        positions.sort_unstable();
        Some(positions)
    }

    /// Plan-time row-count estimate for a range with *literal* bounds: the
    /// exact number of matching rows, read off the ordered map. Costs
    /// O(matching keys) once per prepare (plans are cached).
    pub fn estimate_range(&self, lo: Option<(&Value, bool)>, hi: Option<(&Value, bool)>) -> usize {
        let IndexStore::Btree(map) = &self.store else {
            return 0;
        };
        let Some(bounds) = Self::btree_bounds(lo, hi) else {
            return 0;
        };
        map.range(bounds)
            .filter(|(k, _)| !k.0.is_null())
            .map(|(_, p)| p.len())
            .sum()
    }
}

/// A heap table with schema, rows and optional secondary indexes.
///
/// Rows and indexes sit behind `Arc` so cloning a [`Catalog`] (the
/// copy-on-write commit path of [`crate::Database`]) is O(#tables), not
/// O(#rows): a snapshot shares the row storage of the committed catalog,
/// and a writer's `Arc::make_mut` only copies the tables it touches. Index
/// structures ride the same snapshot: a reader's catalog pins rows *and*
/// indexes from the same committed state, so the two can never disagree.
#[derive(Debug, Clone, Default)]
pub struct Table {
    pub name: String,
    pub columns: Vec<Column>,
    pub rows: Arc<Vec<Row>>,
    pub indexes: Arc<Vec<Index>>,
}

impl Table {
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Find an index on the given column, if any (any kind: both answer
    /// point lookups).
    pub fn index_on(&self, column: usize) -> Option<&Index> {
        self.indexes.iter().find(|i| i.column == column)
    }

    /// Find an *ordered* index on the given column — the only kind that can
    /// answer range predicates.
    pub fn btree_index_on(&self, column: usize) -> Option<&Index> {
        self.indexes
            .iter()
            .find(|i| i.column == column && i.kind == IndexKind::Btree)
    }

    fn check_row(&self, row: &Row) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(Error::exec(format!(
                "table {}: row has {} values, expected {}",
                self.name,
                row.len(),
                self.columns.len()
            )));
        }
        for (v, c) in row.iter().zip(&self.columns) {
            if !c.ty.admits(v) {
                return Err(Error::exec(format!(
                    "table {}: value {v} does not fit column {} of type {}",
                    self.name, c.name, c.ty
                )));
            }
        }
        Ok(())
    }

    /// Append rows, maintaining indexes.
    pub fn insert(&mut self, rows: Vec<Row>) -> Result<usize> {
        let base = self.rows.len();
        for row in &rows {
            self.check_row(row)?;
        }
        let store = Arc::make_mut(&mut self.rows);
        let indexes = Arc::make_mut(&mut self.indexes);
        for (off, row) in rows.into_iter().enumerate() {
            for idx in indexes.iter_mut() {
                idx.add(row[idx.column].clone(), base + off);
            }
            store.push(row);
        }
        Ok(store.len() - base)
    }

    /// Rebuild all indexes (after UPDATE / DELETE).
    fn reindex(&mut self) {
        let rows = Arc::clone(&self.rows);
        for idx in Arc::make_mut(&mut self.indexes).iter_mut() {
            *idx = Index::build(idx.name.clone(), idx.column, idx.kind, &rows);
        }
    }
}

/// A registered function: SQL-language bodies are compiled lazily by the
/// session; PL/pgSQL bodies are consumed by the interpreter / compiler.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDef {
    pub name: String,
    pub params: Vec<(String, Type)>,
    pub returns: Type,
    pub language: Language,
    /// Raw body text, exactly as written between the dollar quotes.
    pub body: String,
}

/// The schema: tables + functions. Owned by a [`crate::Session`].
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: HashMap<String, Table>,
    functions: HashMap<String, Arc<FunctionDef>>,
    /// Bumped on every DDL / DML that can invalidate cached plans.
    pub version: u64,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| Error::plan(format!("relation {name:?} does not exist")))
    }

    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.version += 1;
        self.tables
            .get_mut(name)
            .ok_or_else(|| Error::plan(format!("relation {name:?} does not exist")))
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    pub fn create_table(&mut self, name: &str, columns: Vec<Column>) -> Result<()> {
        if self.tables.contains_key(name) {
            return Err(Error::plan(format!("relation {name:?} already exists")));
        }
        self.version += 1;
        self.tables.insert(
            name.to_string(),
            Table {
                name: name.to_string(),
                columns,
                rows: Arc::new(Vec::new()),
                indexes: Arc::new(Vec::new()),
            },
        );
        Ok(())
    }

    pub fn drop_table(&mut self, name: &str, if_exists: bool) -> Result<()> {
        self.version += 1;
        if self.tables.remove(name).is_none() && !if_exists {
            return Err(Error::plan(format!("relation {name:?} does not exist")));
        }
        Ok(())
    }

    pub fn create_index(
        &mut self,
        index_name: &str,
        table: &str,
        column: &str,
        kind: IndexKind,
    ) -> Result<()> {
        self.version += 1;
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| Error::plan(format!("relation {table:?} does not exist")))?;
        let col = t
            .column_index(column)
            .ok_or_else(|| Error::plan(format!("column {column:?} of {table:?} does not exist")))?;
        if t.indexes.iter().any(|i| i.name == index_name) {
            return Err(Error::plan(format!("index {index_name:?} already exists")));
        }
        let idx = Index::build(index_name.to_string(), col, kind, &t.rows);
        Arc::make_mut(&mut t.indexes).push(idx);
        Ok(())
    }

    /// Bulk insert used by workload generators (skips SQL parsing).
    pub fn bulk_insert(&mut self, table: &str, rows: Vec<Row>) -> Result<usize> {
        self.version += 1;
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| Error::plan(format!("relation {table:?} does not exist")))?;
        t.insert(rows)
    }

    /// Replace rows wholesale (UPDATE/DELETE execution path).
    pub fn replace_rows(&mut self, table: &str, rows: Vec<Row>) -> Result<()> {
        self.version += 1;
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| Error::plan(format!("relation {table:?} does not exist")))?;
        t.rows = Arc::new(rows);
        t.reindex();
        Ok(())
    }

    pub fn function(&self, name: &str) -> Option<&Arc<FunctionDef>> {
        self.functions.get(name)
    }

    pub fn create_function(&mut self, def: FunctionDef, or_replace: bool) -> Result<()> {
        if !or_replace && self.functions.contains_key(&def.name) {
            return Err(Error::plan(format!(
                "function {:?} already exists",
                def.name
            )));
        }
        self.version += 1;
        self.functions.insert(def.name.clone(), Arc::new(def));
        Ok(())
    }

    pub fn drop_function(&mut self, name: &str, if_exists: bool) -> Result<()> {
        self.version += 1;
        if self.functions.remove(name).is_none() && !if_exists {
            return Err(Error::plan(format!("function {name:?} does not exist")));
        }
        Ok(())
    }

    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        names
    }
}

/// Derive the output column names of a query without planning it.
///
/// The PL/pgSQL front end needs the names to bind a `FOR rec IN <query>`
/// loop variable's fields (`rec.name`), both in the interpreter and in the
/// compiled row-loop desugaring. Every select item must therefore have a
/// determinable name: a column reference, an aliased expression, or a
/// wildcard over a FROM item whose columns the catalog (or an explicit
/// alias list) names.
pub fn query_output_columns(q: &plaway_sql::ast::Query, catalog: &Catalog) -> Result<Vec<String>> {
    use plaway_sql::ast::{SelectItem, SetExpr, TableRef};

    fn from_columns(t: &TableRef, catalog: &Catalog, out: &mut Vec<String>) -> Result<()> {
        match t {
            TableRef::Table { name, alias } => {
                if let Some(a) = alias {
                    if !a.columns.is_empty() {
                        out.extend(a.columns.iter().cloned());
                        return Ok(());
                    }
                }
                let table = catalog.table(name)?;
                out.extend(table.columns.iter().map(|c| c.name.clone()));
                Ok(())
            }
            TableRef::Derived { alias, query, .. } => {
                if !alias.columns.is_empty() {
                    out.extend(alias.columns.iter().cloned());
                    Ok(())
                } else {
                    out.extend(query_output_columns(query, catalog)?);
                    Ok(())
                }
            }
            TableRef::Join { left, right, .. } => {
                from_columns(left, catalog, out)?;
                from_columns(right, catalog, out)
            }
        }
    }

    fn set_columns(s: &SetExpr, catalog: &Catalog) -> Result<Vec<String>> {
        match s {
            SetExpr::Select(sel) => {
                let mut out = Vec::with_capacity(sel.items.len());
                for item in &sel.items {
                    match item {
                        SelectItem::Expr { alias: Some(a), .. } => out.push(a.clone()),
                        SelectItem::Expr {
                            expr: plaway_sql::ast::Expr::Column { name, .. },
                            alias: None,
                        } => out.push(name.clone()),
                        SelectItem::Expr { expr, alias: None } => {
                            return Err(Error::plan(format!(
                                "cannot derive a column name for {expr}; \
                                 add an alias (`{expr} AS name`) so the row \
                                 variable's field can be referenced"
                            )))
                        }
                        SelectItem::Wildcard => {
                            for t in &sel.from {
                                from_columns(t, catalog, &mut out)?;
                            }
                        }
                        SelectItem::QualifiedWildcard(q) => {
                            let t = sel
                                .from
                                .iter()
                                .find(|t| match t {
                                    TableRef::Table { name, alias } => {
                                        alias.as_ref().map(|a| a.name.as_str()).unwrap_or(name) == q
                                    }
                                    TableRef::Derived { alias, .. } => alias.name == *q,
                                    TableRef::Join { .. } => false,
                                })
                                .ok_or_else(|| {
                                    Error::plan(format!("unknown wildcard qualifier {q:?}"))
                                })?;
                            from_columns(t, catalog, &mut out)?;
                        }
                    }
                }
                Ok(out)
            }
            SetExpr::SetOp { left, .. } => set_columns(left, catalog),
            SetExpr::Query(q) => query_output_columns(q, catalog),
            SetExpr::Values(rows) => Ok((1..=rows.first().map_or(0, Vec::len))
                .map(|i| format!("column{i}"))
                .collect()),
        }
    }

    set_columns(&q.body, catalog)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cols(spec: &[(&str, Type)]) -> Vec<Column> {
        spec.iter()
            .map(|(n, t)| Column {
                name: n.to_string(),
                ty: t.clone(),
            })
            .collect()
    }

    #[test]
    fn create_insert_lookup() {
        let mut cat = Catalog::new();
        cat.create_table("t", cols(&[("a", Type::Int), ("b", Type::Text)]))
            .unwrap();
        cat.bulk_insert(
            "t",
            vec![
                vec![Value::Int(1), Value::text("x")],
                vec![Value::Int(2), Value::text("y")],
            ],
        )
        .unwrap();
        assert_eq!(cat.table("t").unwrap().rows.len(), 2);
        assert!(cat.table("missing").is_err());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut cat = Catalog::new();
        cat.create_table("t", cols(&[("a", Type::Int)])).unwrap();
        assert!(cat.create_table("t", cols(&[("a", Type::Int)])).is_err());
    }

    #[test]
    fn type_checking_on_insert() {
        let mut cat = Catalog::new();
        cat.create_table("t", cols(&[("a", Type::Int)])).unwrap();
        assert!(cat.bulk_insert("t", vec![vec![Value::text("no")]]).is_err());
        // NULL always fits.
        assert!(cat.bulk_insert("t", vec![vec![Value::Null]]).is_ok());
        // Arity mismatch.
        assert!(cat
            .bulk_insert("t", vec![vec![Value::Int(1), Value::Int(2)]])
            .is_err());
    }

    #[test]
    fn hash_index_lookup_and_maintenance() {
        let mut cat = Catalog::new();
        cat.create_table("t", cols(&[("k", Type::Int), ("v", Type::Text)]))
            .unwrap();
        cat.bulk_insert(
            "t",
            vec![
                vec![Value::Int(1), Value::text("a")],
                vec![Value::Int(2), Value::text("b")],
            ],
        )
        .unwrap();
        cat.create_index("t_k", "t", "k", IndexKind::Hash).unwrap();
        // Insert after index creation must be visible through the index.
        cat.bulk_insert("t", vec![vec![Value::Int(2), Value::text("c")]])
            .unwrap();
        let t = cat.table("t").unwrap();
        let idx = t.index_on(0).unwrap();
        assert_eq!(idx.kind, IndexKind::Hash);
        assert_eq!(idx.lookup(&Value::Int(2)), &[1, 2]);
        assert_eq!(idx.lookup(&Value::Int(9)), &[] as &[usize]);
        // Hash indexes cannot answer range predicates.
        assert!(idx.range(Some((&Value::Int(1), true)), None).is_none());
        assert!(t.btree_index_on(0).is_none());
    }

    #[test]
    fn btree_index_point_range_and_maintenance() {
        let mut cat = Catalog::new();
        cat.create_table("t", cols(&[("k", Type::Int)])).unwrap();
        // Out-of-key-order inserts, duplicates, and a NULL key.
        for k in [5, 2, 9, 2, 7] {
            cat.bulk_insert("t", vec![vec![Value::Int(k)]]).unwrap();
        }
        cat.create_index("t_k", "t", "k", IndexKind::Btree).unwrap();
        cat.bulk_insert("t", vec![vec![Value::Null], vec![Value::Int(3)]])
            .unwrap();
        let t = cat.table("t").unwrap();
        let idx = t.btree_index_on(0).unwrap();
        assert_eq!(idx.lookup(&Value::Int(2)), &[1, 3]);
        // Range scans return heap (row-position) order, not key order, so
        // the output matches a filtered seq scan byte-for-byte.
        let r = idx
            .range(Some((&Value::Int(2), true)), Some((&Value::Int(7), true)))
            .unwrap();
        assert_eq!(r, vec![0, 1, 3, 4, 6]);
        // Exclusive bounds and open ends.
        let r = idx
            .range(Some((&Value::Int(2), false)), Some((&Value::Int(7), false)))
            .unwrap();
        assert_eq!(r, vec![0, 6]);
        // NULL keys never match, even with one end open.
        let r = idx.range(Some((&Value::Int(8), true)), None).unwrap();
        assert_eq!(r, vec![2]);
        // Inverted and empty ranges are empty, not a panic.
        assert!(idx
            .range(Some((&Value::Int(9), true)), Some((&Value::Int(1), true)))
            .unwrap()
            .is_empty());
        assert!(idx
            .range(Some((&Value::Int(4), false)), Some((&Value::Int(4), true)))
            .unwrap()
            .is_empty());
        // Plan-time estimates are exact for literal bounds.
        assert_eq!(
            idx.estimate_range(Some((&Value::Int(2), true)), Some((&Value::Int(7), true))),
            5
        );
        assert_eq!(idx.estimate_range(None, None), 6); // NULL excluded
        assert_eq!(idx.distinct_keys(), 6); // 2,3,5,7,9,NULL
    }

    #[test]
    fn reindex_after_replace() {
        let mut cat = Catalog::new();
        cat.create_table("t", cols(&[("k", Type::Int)])).unwrap();
        cat.bulk_insert("t", vec![vec![Value::Int(1)], vec![Value::Int(2)]])
            .unwrap();
        cat.create_index("t_k", "t", "k", IndexKind::Btree).unwrap();
        cat.replace_rows("t", vec![vec![Value::Int(7)]]).unwrap();
        let t = cat.table("t").unwrap();
        assert_eq!(t.index_on(0).unwrap().lookup(&Value::Int(7)), &[0]);
        assert!(t.index_on(0).unwrap().lookup(&Value::Int(1)).is_empty());
        assert_eq!(
            t.btree_index_on(0)
                .unwrap()
                .range(Some((&Value::Int(0), true)), None)
                .unwrap(),
            vec![0]
        );
    }

    #[test]
    fn functions_register_and_replace() {
        let mut cat = Catalog::new();
        let def = FunctionDef {
            name: "f".into(),
            params: vec![("a".into(), Type::Int)],
            returns: Type::Int,
            language: Language::Sql,
            body: "SELECT a".into(),
        };
        cat.create_function(def.clone(), false).unwrap();
        assert!(cat.create_function(def.clone(), false).is_err());
        cat.create_function(def.clone(), true).unwrap();
        assert_eq!(cat.function("f").unwrap().body, "SELECT a");
        cat.drop_function("f", false).unwrap();
        assert!(cat.drop_function("f", false).is_err());
        assert!(cat.drop_function("f", true).is_ok());
    }

    #[test]
    fn version_bumps_on_ddl() {
        let mut cat = Catalog::new();
        let v0 = cat.version;
        cat.create_table("t", cols(&[("a", Type::Int)])).unwrap();
        assert!(cat.version > v0);
        let v1 = cat.version;
        cat.bulk_insert("t", vec![vec![Value::Int(1)]]).unwrap();
        assert!(cat.version > v1);
    }
}
