//! Catalog: tables, rows, hash indexes and the function registry.
//!
//! Storage is deliberately simple — heap tables as `Vec<Row>` — because the
//! paper's claims are about *executor lifecycle* costs, not storage. Hash
//! indexes give the planner point-lookup plans for the paper's embedded
//! queries (`WHERE location = p.loc` style), which keeps large workloads
//! honest: the interpreted and compiled variants use the same access paths.

use std::collections::HashMap;
use std::sync::Arc;

use plaway_common::{Error, Result, Type, Value};
use plaway_sql::ast::Language;

/// A table row.
pub type Row = Vec<Value>;

/// A column of a table schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    pub name: String,
    pub ty: Type,
}

/// A single-column hash index (equality lookups only).
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    pub name: String,
    /// Indexed column position.
    pub column: usize,
    /// Key value -> row positions.
    map: HashMap<Value, Vec<usize>>,
}

impl HashIndex {
    fn build(name: String, column: usize, rows: &[Row]) -> Self {
        let mut map: HashMap<Value, Vec<usize>> = HashMap::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            map.entry(row[column].clone()).or_default().push(i);
        }
        HashIndex { name, column, map }
    }

    pub fn lookup(&self, key: &Value) -> &[usize] {
        self.map.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }
}

/// A heap table with schema, rows and optional hash indexes.
///
/// Rows and indexes sit behind `Arc` so cloning a [`Catalog`] (the
/// copy-on-write commit path of [`crate::Database`]) is O(#tables), not
/// O(#rows): a snapshot shares the row storage of the committed catalog,
/// and a writer's `Arc::make_mut` only copies the tables it touches.
#[derive(Debug, Clone, Default)]
pub struct Table {
    pub name: String,
    pub columns: Vec<Column>,
    pub rows: Arc<Vec<Row>>,
    pub indexes: Arc<Vec<HashIndex>>,
}

impl Table {
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Find a hash index on the given column, if any.
    pub fn index_on(&self, column: usize) -> Option<&HashIndex> {
        self.indexes.iter().find(|i| i.column == column)
    }

    fn check_row(&self, row: &Row) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(Error::exec(format!(
                "table {}: row has {} values, expected {}",
                self.name,
                row.len(),
                self.columns.len()
            )));
        }
        for (v, c) in row.iter().zip(&self.columns) {
            if !c.ty.admits(v) {
                return Err(Error::exec(format!(
                    "table {}: value {v} does not fit column {} of type {}",
                    self.name, c.name, c.ty
                )));
            }
        }
        Ok(())
    }

    /// Append rows, maintaining indexes.
    pub fn insert(&mut self, rows: Vec<Row>) -> Result<usize> {
        let base = self.rows.len();
        for row in &rows {
            self.check_row(row)?;
        }
        let store = Arc::make_mut(&mut self.rows);
        let indexes = Arc::make_mut(&mut self.indexes);
        for (off, row) in rows.into_iter().enumerate() {
            for idx in indexes.iter_mut() {
                idx.map
                    .entry(row[idx.column].clone())
                    .or_default()
                    .push(base + off);
            }
            store.push(row);
        }
        Ok(store.len() - base)
    }

    /// Rebuild all indexes (after UPDATE / DELETE).
    fn reindex(&mut self) {
        let rows = Arc::clone(&self.rows);
        for idx in Arc::make_mut(&mut self.indexes).iter_mut() {
            *idx = HashIndex::build(idx.name.clone(), idx.column, &rows);
        }
    }
}

/// A registered function: SQL-language bodies are compiled lazily by the
/// session; PL/pgSQL bodies are consumed by the interpreter / compiler.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDef {
    pub name: String,
    pub params: Vec<(String, Type)>,
    pub returns: Type,
    pub language: Language,
    /// Raw body text, exactly as written between the dollar quotes.
    pub body: String,
}

/// The schema: tables + functions. Owned by a [`crate::Session`].
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: HashMap<String, Table>,
    functions: HashMap<String, Arc<FunctionDef>>,
    /// Bumped on every DDL / DML that can invalidate cached plans.
    pub version: u64,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| Error::plan(format!("relation {name:?} does not exist")))
    }

    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.version += 1;
        self.tables
            .get_mut(name)
            .ok_or_else(|| Error::plan(format!("relation {name:?} does not exist")))
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    pub fn create_table(&mut self, name: &str, columns: Vec<Column>) -> Result<()> {
        if self.tables.contains_key(name) {
            return Err(Error::plan(format!("relation {name:?} already exists")));
        }
        self.version += 1;
        self.tables.insert(
            name.to_string(),
            Table {
                name: name.to_string(),
                columns,
                rows: Arc::new(Vec::new()),
                indexes: Arc::new(Vec::new()),
            },
        );
        Ok(())
    }

    pub fn drop_table(&mut self, name: &str, if_exists: bool) -> Result<()> {
        self.version += 1;
        if self.tables.remove(name).is_none() && !if_exists {
            return Err(Error::plan(format!("relation {name:?} does not exist")));
        }
        Ok(())
    }

    pub fn create_index(&mut self, index_name: &str, table: &str, column: &str) -> Result<()> {
        self.version += 1;
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| Error::plan(format!("relation {table:?} does not exist")))?;
        let col = t
            .column_index(column)
            .ok_or_else(|| Error::plan(format!("column {column:?} of {table:?} does not exist")))?;
        if t.indexes.iter().any(|i| i.name == index_name) {
            return Err(Error::plan(format!("index {index_name:?} already exists")));
        }
        let idx = HashIndex::build(index_name.to_string(), col, &t.rows);
        Arc::make_mut(&mut t.indexes).push(idx);
        Ok(())
    }

    /// Bulk insert used by workload generators (skips SQL parsing).
    pub fn bulk_insert(&mut self, table: &str, rows: Vec<Row>) -> Result<usize> {
        self.version += 1;
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| Error::plan(format!("relation {table:?} does not exist")))?;
        t.insert(rows)
    }

    /// Replace rows wholesale (UPDATE/DELETE execution path).
    pub fn replace_rows(&mut self, table: &str, rows: Vec<Row>) -> Result<()> {
        self.version += 1;
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| Error::plan(format!("relation {table:?} does not exist")))?;
        t.rows = Arc::new(rows);
        t.reindex();
        Ok(())
    }

    pub fn function(&self, name: &str) -> Option<&Arc<FunctionDef>> {
        self.functions.get(name)
    }

    pub fn create_function(&mut self, def: FunctionDef, or_replace: bool) -> Result<()> {
        if !or_replace && self.functions.contains_key(&def.name) {
            return Err(Error::plan(format!(
                "function {:?} already exists",
                def.name
            )));
        }
        self.version += 1;
        self.functions.insert(def.name.clone(), Arc::new(def));
        Ok(())
    }

    pub fn drop_function(&mut self, name: &str, if_exists: bool) -> Result<()> {
        self.version += 1;
        if self.functions.remove(name).is_none() && !if_exists {
            return Err(Error::plan(format!("function {name:?} does not exist")));
        }
        Ok(())
    }

    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        names
    }
}

/// Derive the output column names of a query without planning it.
///
/// The PL/pgSQL front end needs the names to bind a `FOR rec IN <query>`
/// loop variable's fields (`rec.name`), both in the interpreter and in the
/// compiled row-loop desugaring. Every select item must therefore have a
/// determinable name: a column reference, an aliased expression, or a
/// wildcard over a FROM item whose columns the catalog (or an explicit
/// alias list) names.
pub fn query_output_columns(q: &plaway_sql::ast::Query, catalog: &Catalog) -> Result<Vec<String>> {
    use plaway_sql::ast::{SelectItem, SetExpr, TableRef};

    fn from_columns(t: &TableRef, catalog: &Catalog, out: &mut Vec<String>) -> Result<()> {
        match t {
            TableRef::Table { name, alias } => {
                if let Some(a) = alias {
                    if !a.columns.is_empty() {
                        out.extend(a.columns.iter().cloned());
                        return Ok(());
                    }
                }
                let table = catalog.table(name)?;
                out.extend(table.columns.iter().map(|c| c.name.clone()));
                Ok(())
            }
            TableRef::Derived { alias, query, .. } => {
                if !alias.columns.is_empty() {
                    out.extend(alias.columns.iter().cloned());
                    Ok(())
                } else {
                    out.extend(query_output_columns(query, catalog)?);
                    Ok(())
                }
            }
            TableRef::Join { left, right, .. } => {
                from_columns(left, catalog, out)?;
                from_columns(right, catalog, out)
            }
        }
    }

    fn set_columns(s: &SetExpr, catalog: &Catalog) -> Result<Vec<String>> {
        match s {
            SetExpr::Select(sel) => {
                let mut out = Vec::with_capacity(sel.items.len());
                for item in &sel.items {
                    match item {
                        SelectItem::Expr { alias: Some(a), .. } => out.push(a.clone()),
                        SelectItem::Expr {
                            expr: plaway_sql::ast::Expr::Column { name, .. },
                            alias: None,
                        } => out.push(name.clone()),
                        SelectItem::Expr { expr, alias: None } => {
                            return Err(Error::plan(format!(
                                "cannot derive a column name for {expr}; \
                                 add an alias (`{expr} AS name`) so the row \
                                 variable's field can be referenced"
                            )))
                        }
                        SelectItem::Wildcard => {
                            for t in &sel.from {
                                from_columns(t, catalog, &mut out)?;
                            }
                        }
                        SelectItem::QualifiedWildcard(q) => {
                            let t = sel
                                .from
                                .iter()
                                .find(|t| match t {
                                    TableRef::Table { name, alias } => {
                                        alias.as_ref().map(|a| a.name.as_str()).unwrap_or(name) == q
                                    }
                                    TableRef::Derived { alias, .. } => alias.name == *q,
                                    TableRef::Join { .. } => false,
                                })
                                .ok_or_else(|| {
                                    Error::plan(format!("unknown wildcard qualifier {q:?}"))
                                })?;
                            from_columns(t, catalog, &mut out)?;
                        }
                    }
                }
                Ok(out)
            }
            SetExpr::SetOp { left, .. } => set_columns(left, catalog),
            SetExpr::Query(q) => query_output_columns(q, catalog),
            SetExpr::Values(rows) => Ok((1..=rows.first().map_or(0, Vec::len))
                .map(|i| format!("column{i}"))
                .collect()),
        }
    }

    set_columns(&q.body, catalog)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cols(spec: &[(&str, Type)]) -> Vec<Column> {
        spec.iter()
            .map(|(n, t)| Column {
                name: n.to_string(),
                ty: t.clone(),
            })
            .collect()
    }

    #[test]
    fn create_insert_lookup() {
        let mut cat = Catalog::new();
        cat.create_table("t", cols(&[("a", Type::Int), ("b", Type::Text)]))
            .unwrap();
        cat.bulk_insert(
            "t",
            vec![
                vec![Value::Int(1), Value::text("x")],
                vec![Value::Int(2), Value::text("y")],
            ],
        )
        .unwrap();
        assert_eq!(cat.table("t").unwrap().rows.len(), 2);
        assert!(cat.table("missing").is_err());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut cat = Catalog::new();
        cat.create_table("t", cols(&[("a", Type::Int)])).unwrap();
        assert!(cat.create_table("t", cols(&[("a", Type::Int)])).is_err());
    }

    #[test]
    fn type_checking_on_insert() {
        let mut cat = Catalog::new();
        cat.create_table("t", cols(&[("a", Type::Int)])).unwrap();
        assert!(cat.bulk_insert("t", vec![vec![Value::text("no")]]).is_err());
        // NULL always fits.
        assert!(cat.bulk_insert("t", vec![vec![Value::Null]]).is_ok());
        // Arity mismatch.
        assert!(cat
            .bulk_insert("t", vec![vec![Value::Int(1), Value::Int(2)]])
            .is_err());
    }

    #[test]
    fn hash_index_lookup_and_maintenance() {
        let mut cat = Catalog::new();
        cat.create_table("t", cols(&[("k", Type::Int), ("v", Type::Text)]))
            .unwrap();
        cat.bulk_insert(
            "t",
            vec![
                vec![Value::Int(1), Value::text("a")],
                vec![Value::Int(2), Value::text("b")],
            ],
        )
        .unwrap();
        cat.create_index("t_k", "t", "k").unwrap();
        // Insert after index creation must be visible through the index.
        cat.bulk_insert("t", vec![vec![Value::Int(2), Value::text("c")]])
            .unwrap();
        let t = cat.table("t").unwrap();
        let idx = t.index_on(0).unwrap();
        assert_eq!(idx.lookup(&Value::Int(2)), &[1, 2]);
        assert_eq!(idx.lookup(&Value::Int(9)), &[] as &[usize]);
    }

    #[test]
    fn reindex_after_replace() {
        let mut cat = Catalog::new();
        cat.create_table("t", cols(&[("k", Type::Int)])).unwrap();
        cat.bulk_insert("t", vec![vec![Value::Int(1)], vec![Value::Int(2)]])
            .unwrap();
        cat.create_index("t_k", "t", "k").unwrap();
        cat.replace_rows("t", vec![vec![Value::Int(7)]]).unwrap();
        let t = cat.table("t").unwrap();
        assert_eq!(t.index_on(0).unwrap().lookup(&Value::Int(7)), &[0]);
        assert!(t.index_on(0).unwrap().lookup(&Value::Int(1)).is_empty());
    }

    #[test]
    fn functions_register_and_replace() {
        let mut cat = Catalog::new();
        let def = FunctionDef {
            name: "f".into(),
            params: vec![("a".into(), Type::Int)],
            returns: Type::Int,
            language: Language::Sql,
            body: "SELECT a".into(),
        };
        cat.create_function(def.clone(), false).unwrap();
        assert!(cat.create_function(def.clone(), false).is_err());
        cat.create_function(def.clone(), true).unwrap();
        assert_eq!(cat.function("f").unwrap().body, "SELECT a");
        cat.drop_function("f", false).unwrap();
        assert!(cat.drop_function("f", false).is_err());
        assert!(cat.drop_function("f", true).is_ok());
    }

    #[test]
    fn version_bumps_on_ddl() {
        let mut cat = Catalog::new();
        let v0 = cat.version;
        cat.create_table("t", cols(&[("a", Type::Int)])).unwrap();
        assert!(cat.version > v0);
        let v1 = cat.version;
        cat.bulk_insert("t", vec![vec![Value::Int(1)]]).unwrap();
        assert!(cat.version > v1);
    }
}
