//! Tuplestore with buffer page-write accounting.
//!
//! PostgreSQL evaluates `WITH RECURSIVE` by appending every iteration's rows
//! to a tuplestore; once the store outgrows `work_mem` it spills to disk in
//! 8 KiB buffer pages. Table 2 of the paper counts exactly those page writes
//! and shows they grow quadratically for `parse()` under `WITH RECURSIVE`
//! (each iteration stores the whole residual input string) while
//! `WITH ITERATE` writes nothing.
//!
//! We model the same mechanism: rows are accounted at
//! `24-byte tuple header + datum sizes` (HeapTupleHeaderData is 23 bytes,
//! MAXALIGNed to 24), spill begins once `work_mem` is exceeded, and from
//! then on every stored byte is charged to 8 KiB pages.

use plaway_common::Value;

/// Matches PostgreSQL's MAXALIGNed heap tuple header.
pub const TUPLE_HEADER_BYTES: usize = 24;
/// PostgreSQL buffer page size.
pub const PAGE_SIZE: usize = 8192;

/// Accounting shared across a query execution (lives in the session stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// 8 KiB pages written because a tuplestore exceeded `work_mem`.
    pub page_writes: u64,
    /// Total bytes that went through spilled tuplestores.
    pub spilled_bytes: u64,
    /// Peak in-memory footprint across tuplestores.
    pub peak_bytes: u64,
}

impl BufferStats {
    pub fn reset(&mut self) {
        *self = BufferStats::default();
    }
}

/// An accounting tuplestore: owns rows, tracks bytes, spills past `work_mem`.
#[derive(Debug)]
pub struct Tuplestore {
    rows: Vec<Vec<Value>>,
    bytes: usize,
    work_mem: usize,
    /// Bytes already charged to pages (only advances while spilled).
    charged_bytes: usize,
    spilled: bool,
    page_writes: u64,
}

impl Tuplestore {
    pub fn new(work_mem: usize) -> Self {
        Tuplestore {
            rows: Vec::new(),
            bytes: 0,
            work_mem,
            charged_bytes: 0,
            spilled: false,
            page_writes: 0,
        }
    }

    fn row_bytes(row: &[Value]) -> usize {
        TUPLE_HEADER_BYTES + row.iter().map(Value::size_bytes).sum::<usize>()
    }

    pub fn push(&mut self, row: Vec<Value>) {
        self.bytes += Self::row_bytes(&row);
        self.rows.push(row);
        if !self.spilled && self.bytes > self.work_mem {
            // First overflow: PostgreSQL dumps the whole in-memory store to
            // disk, so everything accumulated so far is written at once.
            self.spilled = true;
        }
        if self.spilled {
            // Charge any complete pages we have not yet charged.
            let pages_due = (self.bytes / PAGE_SIZE) as u64;
            let pages_charged = (self.charged_bytes / PAGE_SIZE) as u64;
            if pages_due > pages_charged {
                self.page_writes += pages_due - pages_charged;
                self.charged_bytes = self.bytes - self.bytes % PAGE_SIZE;
            }
        }
    }

    pub fn extend(&mut self, rows: impl IntoIterator<Item = Vec<Value>>) {
        for r in rows {
            self.push(r);
        }
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn bytes(&self) -> usize {
        self.bytes
    }

    pub fn spilled(&self) -> bool {
        self.spilled
    }

    /// Finish: flush the trailing partial page (if spilled), merge counters
    /// into `stats`, and hand back the rows.
    pub fn finish(mut self, stats: &mut BufferStats) -> Vec<Vec<Value>> {
        if self.spilled && self.bytes > self.charged_bytes {
            self.page_writes += 1; // trailing partial page
            self.charged_bytes = self.bytes;
        }
        stats.page_writes += self.page_writes;
        if self.spilled {
            stats.spilled_bytes += self.bytes as u64;
        }
        stats.peak_bytes = stats.peak_bytes.max(self.bytes as u64);
        self.rows
    }
}

// ---------------------------------------------------------------------------
// Execution-scoped row snapshots (the materialize-once cursor operator)

/// Positionally addressable row snapshots for compiled `FOR rec IN <query>`
/// loops: the loop source is evaluated exactly once at loop entry (through
/// an accounting [`Tuplestore`], so cursor materialization shows up in the
/// buffer statistics like any other working table) and registered here;
/// each iteration then fetches row *i* in O(1).
///
/// The store lives on the [`crate::exec::Runtime`] — *execution*-scoped
/// state, torn down with the executor. That scoping is what makes the
/// operator safe against the VM's invariant-sub-plan memoization: a
/// snapshot handle is only meaningful within the execution that created
/// it, so snapshot expressions are never hoisted or cached (see
/// `expr_free_scopes` in `vm.rs`). Handles are slot indexes with free-list
/// reuse; `release` keeps the live set bounded by loop-nesting depth even
/// when one execution enters thousands of loops.
#[derive(Debug, Default)]
pub struct SnapshotStore {
    slots: Vec<Option<Vec<Vec<Value>>>>,
    free: Vec<usize>,
}

impl SnapshotStore {
    /// Register a fully materialized row set; returns its handle.
    pub fn register(&mut self, rows: Vec<Vec<Value>>) -> i64 {
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot] = Some(rows);
                slot as i64
            }
            None => {
                self.slots.push(Some(rows));
                (self.slots.len() - 1) as i64
            }
        }
    }

    fn slot(&self, handle: i64) -> Result<&Vec<Vec<Value>>, String> {
        usize::try_from(handle)
            .ok()
            .and_then(|h| self.slots.get(h))
            .and_then(Option::as_ref)
            .ok_or_else(|| format!("snapshot #{handle} is not registered (compiler bug)"))
    }

    /// Number of rows in the snapshot.
    pub fn len(&self, handle: i64) -> Result<usize, String> {
        self.slot(handle).map(Vec::len)
    }

    /// Is the snapshot empty?
    pub fn is_empty(&self, handle: i64) -> Result<bool, String> {
        self.slot(handle).map(Vec::is_empty)
    }

    /// Row `pos` (1-based — PL/pgSQL cursor positions), O(1).
    pub fn row(&self, handle: i64, pos: i64) -> Result<&[Value], String> {
        let rows = self.slot(handle)?;
        usize::try_from(pos - 1)
            .ok()
            .and_then(|i| rows.get(i))
            .map(Vec::as_slice)
            .ok_or_else(|| {
                format!(
                    "snapshot #{handle}: row {pos} out of range (1..={})",
                    rows.len()
                )
            })
    }

    /// Drop the snapshot and recycle its slot. Releasing an unknown or
    /// already-released handle is an error — it would mean the compiler
    /// emitted a double release on some control-flow path.
    pub fn release(&mut self, handle: i64) -> Result<(), String> {
        let slot = usize::try_from(handle)
            .ok()
            .filter(|&h| h < self.slots.len() && self.slots[h].is_some())
            .ok_or_else(|| format!("snapshot #{handle} released twice (compiler bug)"))?;
        self.slots[slot] = None;
        self.free.push(slot);
        Ok(())
    }

    /// Snapshots currently registered (not yet released). Used by leak
    /// assertions: after a normally completed execution this must be 0.
    pub fn live(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_row() -> Vec<Value> {
        vec![Value::Int(1)] // 24 header + 8 = 32 bytes
    }

    #[test]
    fn small_store_never_spills() {
        let mut stats = BufferStats::default();
        let mut ts = Tuplestore::new(4 * 1024 * 1024);
        for _ in 0..100 {
            ts.push(int_row());
        }
        assert!(!ts.spilled());
        let rows = ts.finish(&mut stats);
        assert_eq!(rows.len(), 100);
        assert_eq!(stats.page_writes, 0);
        assert_eq!(stats.spilled_bytes, 0);
    }

    #[test]
    fn spill_charges_whole_accumulation() {
        let mut stats = BufferStats::default();
        // Tiny work_mem: everything spills.
        let mut ts = Tuplestore::new(64);
        let n = 1000usize;
        for _ in 0..n {
            ts.push(int_row());
        }
        assert!(ts.spilled());
        let total = n * 32;
        let rows = ts.finish(&mut stats);
        assert_eq!(rows.len(), n);
        // All bytes charged, in whole pages plus one trailing partial page.
        let expect_pages = (total / PAGE_SIZE) as u64 + u64::from(!total.is_multiple_of(PAGE_SIZE));
        assert_eq!(stats.page_writes, expect_pages);
        assert_eq!(stats.spilled_bytes, total as u64);
    }

    #[test]
    fn page_count_is_quadratic_for_growing_strings() {
        // Mimic parse(): iteration i stores the residual string of length
        // n - i. Total bytes ~ n^2 / 2 -> pages ~ n^2 / 2 / 8192.
        let count_pages = |n: usize| {
            let mut stats = BufferStats::default();
            let mut ts = Tuplestore::new(4 * 1024 * 1024);
            for i in 0..n {
                ts.push(vec![Value::text("x".repeat(n - i)), Value::Int(i as i64)]);
            }
            ts.finish(&mut stats);
            stats.page_writes
        };
        let p10 = count_pages(10_000);
        let p20 = count_pages(20_000);
        // Quadratic: doubling n must roughly quadruple pages.
        let ratio = p20 as f64 / p10 as f64;
        assert!(
            (3.5..4.5).contains(&ratio),
            "ratio {ratio}, p10={p10}, p20={p20}"
        );
        // Within 5% of the analytic n^2/2 bytes prediction.
        let analytic = (10_000f64 * 10_000f64 / 2.0) / PAGE_SIZE as f64;
        assert!(
            (p10 as f64 - analytic).abs() / analytic < 0.10,
            "p10={p10}, analytic={analytic}"
        );
    }

    #[test]
    fn snapshot_store_registers_fetches_releases() {
        let mut st = SnapshotStore::default();
        let h = st.register(vec![vec![Value::Int(10)], vec![Value::Int(20)]]);
        assert_eq!(st.len(h).unwrap(), 2);
        assert!(!st.is_empty(h).unwrap());
        assert_eq!(st.row(h, 1).unwrap(), &[Value::Int(10)]);
        assert_eq!(st.row(h, 2).unwrap(), &[Value::Int(20)]);
        assert!(st.row(h, 3).is_err(), "out of range");
        assert!(st.row(h, 0).is_err(), "positions are 1-based");
        assert_eq!(st.live(), 1);
        st.release(h).unwrap();
        assert_eq!(st.live(), 0);
        assert!(st.release(h).is_err(), "double release must be loud");
        assert!(st.len(h).is_err(), "released handle is dead");
    }

    #[test]
    fn snapshot_store_recycles_slots() {
        let mut st = SnapshotStore::default();
        let a = st.register(vec![vec![Value::Int(1)]]);
        st.release(a).unwrap();
        let b = st.register(vec![vec![Value::Int(2)]]);
        assert_eq!(a, b, "freed slot is reused");
        let c = st.register(vec![]);
        assert_ne!(b, c);
        assert!(st.is_empty(c).unwrap());
        assert_eq!(st.live(), 2);
    }

    #[test]
    fn peak_bytes_tracked() {
        let mut stats = BufferStats::default();
        let mut ts = Tuplestore::new(1024 * 1024);
        for _ in 0..10 {
            ts.push(int_row());
        }
        ts.finish(&mut stats);
        assert_eq!(stats.peak_bytes, 320);
    }
}
