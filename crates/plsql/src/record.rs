//! Rewriting references to a `FOR rec IN <query>` loop variable.
//!
//! The row variable of a query-driven FOR loop is not a scalar: its fields
//! are reached as `rec.field` (a qualified column in SQL syntax) and the
//! whole record as bare `rec`. Neither back end keeps a record variable
//! around at runtime — the interpreter binds fields to numbered slots, the
//! compiler to fresh temporaries — so both rewrite the loop body up front
//! with [`rewrite_stmts`], substituting every reference through a caller
//! supplied mapping.
//!
//! The rewrite is shadowing-aware on two levels:
//!
//! * a nested `FOR` loop or block declaration reusing the variable name
//!   shadows it for the nested statements, and
//! * a (sub)query whose FROM clause binds the name as a table or alias
//!   captures it — references inside that query are table columns, not
//!   record fields, and are left alone.

use std::cell::RefCell;

use plaway_sql::ast::{Expr, OrderItem, Query, Select, SelectItem, SetExpr, TableRef, WindowSpec};

use crate::ast::{ExceptionHandler, PlStmt, VarDecl};

/// One reference to the loop variable `rec`: a field (`rec.f`) or the whole
/// record (bare `rec`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordRef<'a> {
    /// `rec.field`.
    Field(&'a str),
    /// Bare `rec`.
    Whole,
}

/// Shared mutable access to the caller's mapping, so the expression and
/// query rewriters (two independent closures) can both reach it.
type MkCell<'a> = RefCell<&'a mut dyn FnMut(RecordRef) -> Expr>;

fn call_mk(mk: &MkCell, r: RecordRef) -> Expr {
    (**mk.borrow_mut())(r)
}

/// Rewrite every reference to the record variable `var` in a statement
/// list. `mk` maps each reference to its replacement expression.
pub fn rewrite_stmts(
    stmts: Vec<PlStmt>,
    var: &str,
    mk: &mut dyn FnMut(RecordRef) -> Expr,
) -> Vec<PlStmt> {
    let cell: MkCell = RefCell::new(mk);
    stmts
        .into_iter()
        .map(|s| rewrite_stmt(s, var, &cell))
        .collect()
}

/// Rewrite record references inside one expression (descending into
/// subqueries that do not capture the name).
pub fn rewrite_expr(e: Expr, var: &str, mk: &mut dyn FnMut(RecordRef) -> Expr) -> Expr {
    let cell: MkCell = RefCell::new(mk);
    rw_expr(e, var, &cell)
}

/// Rewrite record references inside a full query (the loop source of a
/// nested `FOR rec IN <query>`, which may correlate on the outer record).
pub fn rewrite_query(q: Query, var: &str, mk: &mut dyn FnMut(RecordRef) -> Expr) -> Query {
    let cell: MkCell = RefCell::new(mk);
    rw_query(q, var, &cell)
}

fn rw_stmts(stmts: Vec<PlStmt>, var: &str, mk: &MkCell) -> Vec<PlStmt> {
    stmts
        .into_iter()
        .map(|s| rewrite_stmt(s, var, mk))
        .collect()
}

fn rewrite_stmt(s: PlStmt, var: &str, mk: &MkCell) -> PlStmt {
    match s {
        PlStmt::Assign { var: v, expr } => PlStmt::Assign {
            var: v,
            expr: rw_expr(expr, var, mk),
        },
        PlStmt::If { branches, else_ } => PlStmt::If {
            branches: branches
                .into_iter()
                .map(|(c, b)| (rw_expr(c, var, mk), rw_stmts(b, var, mk)))
                .collect(),
            else_: rw_stmts(else_, var, mk),
        },
        PlStmt::CaseStmt {
            operand,
            branches,
            else_,
        } => PlStmt::CaseStmt {
            operand: operand.map(|o| rw_expr(o, var, mk)),
            branches: branches
                .into_iter()
                .map(|(vals, b)| {
                    (
                        vals.into_iter().map(|v| rw_expr(v, var, mk)).collect(),
                        rw_stmts(b, var, mk),
                    )
                })
                .collect(),
            else_: else_.map(|b| rw_stmts(b, var, mk)),
        },
        PlStmt::Loop { label, body } => PlStmt::Loop {
            label,
            body: rw_stmts(body, var, mk),
        },
        PlStmt::While { label, cond, body } => PlStmt::While {
            label,
            cond: rw_expr(cond, var, mk),
            body: rw_stmts(body, var, mk),
        },
        PlStmt::ForRange {
            label,
            var: v,
            from,
            to,
            by,
            reverse,
            body,
        } => {
            let from = rw_expr(from, var, mk);
            let to = rw_expr(to, var, mk);
            let by = by.map(|b| rw_expr(b, var, mk));
            // An inner loop variable reusing the name shadows the record.
            let body = if v == var {
                body
            } else {
                rw_stmts(body, var, mk)
            };
            PlStmt::ForRange {
                label,
                var: v,
                from,
                to,
                by,
                reverse,
                body,
            }
        }
        PlStmt::ForQuery {
            label,
            var: v,
            query,
            body,
        } => {
            // The nested loop's query still sees the outer record; its body
            // does only when the inner variable does not shadow it.
            let query = rw_query(query, var, mk);
            let body = if v == var {
                body
            } else {
                rw_stmts(body, var, mk)
            };
            PlStmt::ForQuery {
                label,
                var: v,
                query,
                body,
            }
        }
        PlStmt::Exit { label, when } => PlStmt::Exit {
            label,
            when: when.map(|w| rw_expr(w, var, mk)),
        },
        PlStmt::Continue { label, when } => PlStmt::Continue {
            label,
            when: when.map(|w| rw_expr(w, var, mk)),
        },
        PlStmt::Return { expr } => PlStmt::Return {
            expr: expr.map(|x| rw_expr(x, var, mk)),
        },
        PlStmt::Null => PlStmt::Null,
        PlStmt::Raise {
            level,
            format,
            args,
            condition,
        } => PlStmt::Raise {
            level,
            format,
            args: args.into_iter().map(|a| rw_expr(a, var, mk)).collect(),
            condition,
        },
        PlStmt::Perform { expr } => PlStmt::Perform {
            expr: rw_expr(expr, var, mk),
        },
        PlStmt::Block {
            decls,
            body,
            handlers,
        } => {
            let shadowed = decls.iter().any(|d| d.name == var);
            let decls: Vec<VarDecl> = decls
                .into_iter()
                .map(|d| VarDecl {
                    init: d.init.map(|i| rw_expr(i, var, mk)),
                    ..d
                })
                .collect();
            let (body, handlers) = if shadowed {
                (body, handlers)
            } else {
                (
                    rw_stmts(body, var, mk),
                    handlers
                        .into_iter()
                        .map(|h| ExceptionHandler {
                            conditions: h.conditions,
                            body: rw_stmts(h.body, var, mk),
                        })
                        .collect(),
                )
            };
            PlStmt::Block {
                decls,
                body,
                handlers,
            }
        }
    }
}

fn rw_expr(e: Expr, var: &str, mk: &MkCell) -> Expr {
    e.rewrite(
        &mut |sub| match sub {
            Expr::Column {
                qualifier: Some(ref q),
                ref name,
            } if q == var => call_mk(mk, RecordRef::Field(name)),
            Expr::Column {
                qualifier: None,
                ref name,
            } if name == var => call_mk(mk, RecordRef::Whole),
            other => other,
        },
        &mut |q| rw_query(q, var, mk),
    )
}

fn rw_query(q: Query, var: &str, mk: &MkCell) -> Query {
    if query_binds_name(&q, var) {
        // A FROM item claims the name: references inside this query are
        // columns of that table, not record fields.
        return q;
    }
    let body = rw_set_expr(q.body, var, mk);
    Query {
        with: q.with, // CTE bodies are self-contained scopes; left alone.
        body,
        order_by: q
            .order_by
            .into_iter()
            .map(|o| OrderItem {
                expr: rw_expr(o.expr, var, mk),
                ..o
            })
            .collect(),
        limit: q.limit.map(|e| rw_expr(e, var, mk)),
        offset: q.offset.map(|e| rw_expr(e, var, mk)),
    }
}

fn rw_set_expr(s: SetExpr, var: &str, mk: &MkCell) -> SetExpr {
    match s {
        SetExpr::Select(sel) => {
            let Select {
                distinct,
                items,
                from,
                where_,
                group_by,
                having,
                windows,
            } = *sel;
            SetExpr::Select(Box::new(Select {
                distinct,
                items: items
                    .into_iter()
                    .map(|i| match i {
                        SelectItem::Expr { expr, alias } => SelectItem::Expr {
                            expr: rw_expr(expr, var, mk),
                            alias,
                        },
                        other => other,
                    })
                    .collect(),
                from: from.into_iter().map(|t| rw_table(t, var, mk)).collect(),
                where_: where_.map(|e| rw_expr(e, var, mk)),
                group_by: group_by.into_iter().map(|e| rw_expr(e, var, mk)).collect(),
                having: having.map(|e| rw_expr(e, var, mk)),
                windows: windows
                    .into_iter()
                    .map(|(n, spec)| (n, rw_window(spec, var, mk)))
                    .collect(),
            }))
        }
        SetExpr::SetOp {
            op,
            all,
            left,
            right,
        } => SetExpr::SetOp {
            op,
            all,
            left: Box::new(rw_set_expr(*left, var, mk)),
            right: Box::new(rw_set_expr(*right, var, mk)),
        },
        SetExpr::Values(rows) => SetExpr::Values(
            rows.into_iter()
                .map(|r| r.into_iter().map(|e| rw_expr(e, var, mk)).collect())
                .collect(),
        ),
        SetExpr::Query(q) => SetExpr::Query(Box::new(rw_query(*q, var, mk))),
    }
}

fn rw_table(t: TableRef, var: &str, mk: &MkCell) -> TableRef {
    match t {
        TableRef::Table { .. } => t,
        TableRef::Derived {
            lateral,
            query,
            alias,
        } => TableRef::Derived {
            lateral,
            query: Box::new(rw_query(*query, var, mk)),
            alias,
        },
        TableRef::Join {
            left,
            right,
            kind,
            lateral,
            on,
        } => TableRef::Join {
            left: Box::new(rw_table(*left, var, mk)),
            right: Box::new(rw_table(*right, var, mk)),
            kind,
            lateral,
            on: on.map(|e| rw_expr(e, var, mk)),
        },
    }
}

fn rw_window(spec: WindowSpec, var: &str, mk: &MkCell) -> WindowSpec {
    WindowSpec {
        base: spec.base,
        partition_by: spec
            .partition_by
            .into_iter()
            .map(|e| rw_expr(e, var, mk))
            .collect(),
        order_by: spec
            .order_by
            .into_iter()
            .map(|o| OrderItem {
                expr: rw_expr(o.expr, var, mk),
                ..o
            })
            .collect(),
        frame: spec.frame,
    }
}

/// Does any FROM item of the query's top-level selects bind `name` as a
/// table, table alias or derived-table alias?
fn query_binds_name(q: &Query, name: &str) -> bool {
    fn table_binds(t: &TableRef, name: &str) -> bool {
        match t {
            TableRef::Table { name: n, alias } => {
                alias.as_ref().map(|a| a.name.as_str()).unwrap_or(n) == name
            }
            TableRef::Derived { alias, .. } => alias.name == name,
            TableRef::Join { left, right, .. } => {
                table_binds(left, name) || table_binds(right, name)
            }
        }
    }
    fn set_binds(s: &SetExpr, name: &str) -> bool {
        match s {
            SetExpr::Select(sel) => sel.from.iter().any(|t| table_binds(t, name)),
            SetExpr::SetOp { left, right, .. } => set_binds(left, name) || set_binds(right, name),
            SetExpr::Values(_) => false,
            SetExpr::Query(q) => set_binds(&q.body, name),
        }
    }
    set_binds(&q.body, name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use plaway_sql::ast::BinOp;

    fn sub(e: &str, var: &str) -> String {
        let parsed = plaway_sql::parse_expr(e).unwrap();
        rewrite_expr(parsed, var, &mut |r| match r {
            RecordRef::Field(f) => Expr::col(format!("f_{f}")),
            RecordRef::Whole => Expr::col("whole"),
        })
        .to_string()
    }

    #[test]
    fn fields_and_whole_record_rewrite() {
        assert_eq!(sub("rec.a + rec.b", "rec"), "f_a + f_b");
        assert_eq!(sub("rec", "rec"), "whole");
        assert_eq!(sub("other.a", "rec"), "other.a");
    }

    #[test]
    fn subquery_alias_captures_the_name() {
        // `rec` is a table alias inside the subquery: left alone there,
        // rewritten outside.
        let got = sub(
            "rec.a + (SELECT rec.x FROM t AS rec WHERE rec.x > 0)",
            "rec",
        );
        assert_eq!(got, "f_a + (SELECT rec.x FROM t AS rec WHERE rec.x > 0)");
    }

    #[test]
    fn correlated_subquery_rewrites() {
        let got = sub("(SELECT t.v FROM t WHERE t.k = rec.key)", "rec");
        assert_eq!(got, "(SELECT t.v FROM t WHERE t.k = f_key)");
    }

    #[test]
    fn nested_for_same_name_shadows_body_not_query() {
        let inner_query =
            plaway_sql::parse_query("SELECT t.v AS v FROM t WHERE t.k = r.key").unwrap();
        let body = vec![PlStmt::Assign {
            var: "x".into(),
            expr: Expr::qcol("r", "v"),
        }];
        let stmts = vec![PlStmt::ForQuery {
            label: None,
            var: "r".into(),
            query: inner_query,
            body,
        }];
        let out = rewrite_stmts(stmts, "r", &mut |r| match r {
            RecordRef::Field(f) => Expr::col(format!("up_{f}")),
            RecordRef::Whole => Expr::col("up"),
        });
        let PlStmt::ForQuery { query, body, .. } = &out[0] else {
            panic!()
        };
        // Outer `r.key` in the nested query was rewritten...
        assert!(query.to_string().contains("up_key"), "{query}");
        // ...but the inner body's `r.v` belongs to the inner loop variable.
        let PlStmt::Assign { expr, .. } = &body[0] else {
            panic!()
        };
        assert_eq!(
            *expr,
            Expr::qcol("r", "v"),
            "shadowed body must be untouched"
        );
    }

    #[test]
    fn statement_shapes_rewrite() {
        let stmts = vec![PlStmt::If {
            branches: vec![(
                Expr::binary(BinOp::Gt, Expr::qcol("rec", "v"), Expr::int(0)),
                vec![PlStmt::Return {
                    expr: Some(Expr::qcol("rec", "v")),
                }],
            )],
            else_: vec![],
        }];
        let out = rewrite_stmts(stmts, "rec", &mut |_| Expr::col("x"));
        let PlStmt::If { branches, .. } = &out[0] else {
            panic!()
        };
        assert_eq!(branches[0].0.to_string(), "x > 0");
    }
}
