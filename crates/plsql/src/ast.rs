//! PL/pgSQL abstract syntax.
//!
//! Expressions are SQL expressions ([`plaway_sql::ast::Expr`]); an embedded
//! query `Qi` is simply an expression containing a scalar subquery. This is
//! faithful to PostgreSQL, where `plpgsql` hands every expression to the SQL
//! parser.

use plaway_common::Type;
use plaway_sql::ast::{Expr, Query};

/// A parsed PL/pgSQL function.
#[derive(Debug, Clone, PartialEq)]
pub struct PlFunction {
    /// Function name as registered in the catalog.
    pub name: String,
    /// Parameters: `(name, type)` in declaration order.
    pub params: Vec<(String, Type)>,
    /// Declared return type.
    pub returns: Type,
    /// The `DECLARE` section.
    pub decls: Vec<VarDecl>,
    /// The `BEGIN .. END` statement list.
    pub body: Vec<PlStmt>,
}

/// `DECLARE name type [:= init];`
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Optional initializer (may embed queries); `NULL` when absent.
    pub init: Option<Expr>,
}

/// `RAISE <level> 'format' [, args]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaiseLevel {
    /// `RAISE DEBUG` — collected as a notice.
    Debug,
    /// `RAISE NOTICE` (the parser's default level).
    Notice,
    /// `RAISE INFO` — collected as a notice.
    Info,
    /// `RAISE WARNING` — collected as a notice.
    Warning,
    /// `RAISE EXCEPTION` — raises a catchable condition.
    Exception,
}

/// The condition name `RAISE EXCEPTION 'message'` raises (PostgreSQL's
/// `P0001` errcode). `EXCEPTION WHEN raise_exception THEN` (or `OTHERS`)
/// catches it.
pub const RAISE_EXCEPTION_CONDITION: &str = "raise_exception";

/// The condition raised when a `CASE` statement finds no matching `WHEN`
/// and has no `ELSE` (PostgreSQL's `20000` / `case_not_found`).
pub const CASE_NOT_FOUND_CONDITION: &str = "case_not_found";

/// The condition raised when control falls off the end of a function
/// without executing `RETURN`.
pub const NO_RETURN_CONDITION: &str = "no_function_result";

/// One `WHEN cond [OR cond]... THEN stmts` arm of an `EXCEPTION` section.
#[derive(Debug, Clone, PartialEq)]
pub struct ExceptionHandler {
    /// Condition names, lowercased. `others` matches every condition.
    pub conditions: Vec<String>,
    /// Handler body.
    pub body: Vec<PlStmt>,
}

impl ExceptionHandler {
    /// Does this arm catch the given condition?
    pub fn matches(&self, condition: &str) -> bool {
        condition_matches(&self.conditions, condition)
    }
}

/// Does a handler arm's condition list catch `condition`? (`others` is the
/// catch-all.) Shared by [`ExceptionHandler::matches`] and the interpreter's
/// compiled handler form, so the dispatch rule has exactly one definition.
pub fn condition_matches(conditions: &[String], condition: &str) -> bool {
    conditions.iter().any(|c| c == "others" || c == condition)
}

/// PL/pgSQL statements.
// The ForRange variant carries bounds/step expressions inline; boxing them
// would ripple `Box` through the parser, interpreter and compiler for a type
// that only ever lives inside already-heap-allocated statement lists.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum PlStmt {
    /// `var := expr;` (also accepts `=`).
    Assign {
        /// Assigned variable (resolved against enclosing scopes).
        var: String,
        /// Right-hand side.
        expr: Expr,
    },
    /// `IF c THEN .. ELSIF c THEN .. ELSE .. END IF;`
    If {
        /// `(condition, body)` per IF/ELSIF arm, in order.
        branches: Vec<(Expr, Vec<PlStmt>)>,
        /// The ELSE body (empty when absent).
        else_: Vec<PlStmt>,
    },
    /// `CASE [operand] WHEN v THEN .. ELSE .. END CASE;`
    CaseStmt {
        /// Dispatch operand; `None` for the searched (`CASE WHEN cond`) form.
        operand: Option<Expr>,
        /// `(values, body)` per WHEN arm.
        branches: Vec<(Vec<Expr>, Vec<PlStmt>)>,
        /// ELSE body; its absence raises `case_not_found` when nothing matches.
        else_: Option<Vec<PlStmt>>,
    },
    /// `[<<label>>] LOOP .. END LOOP [label];`
    Loop {
        /// Optional `<<label>>`.
        label: Option<String>,
        /// Loop body.
        body: Vec<PlStmt>,
    },
    /// `[<<label>>] WHILE c LOOP .. END LOOP;`
    While {
        /// Optional `<<label>>`.
        label: Option<String>,
        /// Loop condition, tested before each iteration.
        cond: Expr,
        /// Loop body.
        body: Vec<PlStmt>,
    },
    /// `[<<label>>] FOR v IN [REVERSE] a..b [BY s] LOOP .. END LOOP;`
    ForRange {
        /// Optional `<<label>>`.
        label: Option<String>,
        /// Loop variable (implicitly declared, loop-scoped, int).
        var: String,
        /// Lower bound, evaluated once at entry.
        from: Expr,
        /// Upper bound, evaluated once at entry.
        to: Expr,
        /// Step (`BY s`), evaluated once at entry; 1 when absent.
        by: Option<Expr>,
        /// `REVERSE`: iterate downward.
        reverse: bool,
        /// Loop body.
        body: Vec<PlStmt>,
    },
    /// `[<<label>>] FOR rec IN <query> LOOP .. END LOOP;` — the cursor-style
    /// loop over query rows. `rec` is implicitly declared, scoped to the
    /// loop, and its fields are accessed as `rec.column`.
    ForQuery {
        /// Optional `<<label>>`.
        label: Option<String>,
        /// Record variable (implicitly declared, loop-scoped).
        var: String,
        /// The loop source, evaluated with loop-entry variable values.
        query: Query,
        /// Loop body; references fields as `var.column`.
        body: Vec<PlStmt>,
    },
    /// `EXIT [label] [WHEN c];`
    Exit {
        /// Target loop label; innermost loop when absent.
        label: Option<String>,
        /// Optional `WHEN` condition.
        when: Option<Expr>,
    },
    /// `CONTINUE [label] [WHEN c];`
    Continue {
        /// Target loop label; innermost loop when absent.
        label: Option<String>,
        /// Optional `WHEN` condition.
        when: Option<Expr>,
    },
    /// `RETURN [expr];`
    Return {
        /// Result expression; bare `RETURN;` yields NULL.
        expr: Option<Expr>,
    },
    /// `NULL;` — no-op.
    Null,
    /// `RAISE NOTICE 'fmt %', args;` — or, with `condition` set, the
    /// message-less `RAISE <condition>;` form that raises a named condition
    /// (always at EXCEPTION level).
    Raise {
        /// Severity; only `Exception` transfers control.
        level: RaiseLevel,
        /// Format string with `%` placeholders (`%%` escapes).
        format: String,
        /// Placeholder arguments, in order.
        args: Vec<Expr>,
        /// `Some` for `RAISE division_by_zero;`-style named conditions;
        /// `None` for the format-string form (condition
        /// [`RAISE_EXCEPTION_CONDITION`] when the level is `Exception`).
        condition: Option<String>,
    },
    /// `PERFORM expr;` — evaluate and discard (used for side-effect-free
    /// warm-up queries in benchmarks).
    Perform {
        /// Expression evaluated for its effects.
        expr: Expr,
    },
    /// `[DECLARE decls] BEGIN stmts [EXCEPTION WHEN .. THEN ..] END;` —
    /// a nested block. Declarations re-initialize at every entry; handlers
    /// catch conditions raised (via `RAISE`) inside `body`, not inside the
    /// declarations or the handlers themselves.
    Block {
        /// The block's `DECLARE` section (re-initialized at every entry).
        decls: Vec<VarDecl>,
        /// Protected statement list.
        body: Vec<PlStmt>,
        /// `EXCEPTION` arms, first match wins; empty = plain nested block.
        handlers: Vec<ExceptionHandler>,
    },
}

impl PlStmt {
    /// Visit this statement and all nested statements (pre-order).
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a PlStmt)) {
        f(self);
        match self {
            PlStmt::If { branches, else_ } => {
                for (_, stmts) in branches {
                    for s in stmts {
                        s.walk(f);
                    }
                }
                for s in else_ {
                    s.walk(f);
                }
            }
            PlStmt::CaseStmt {
                branches, else_, ..
            } => {
                for (_, stmts) in branches {
                    for s in stmts {
                        s.walk(f);
                    }
                }
                if let Some(stmts) = else_ {
                    for s in stmts {
                        s.walk(f);
                    }
                }
            }
            PlStmt::Loop { body, .. }
            | PlStmt::While { body, .. }
            | PlStmt::ForRange { body, .. }
            | PlStmt::ForQuery { body, .. } => {
                for s in body {
                    s.walk(f);
                }
            }
            PlStmt::Block { body, handlers, .. } => {
                for s in body {
                    s.walk(f);
                }
                for h in handlers {
                    for s in &h.body {
                        s.walk(f);
                    }
                }
            }
            _ => {}
        }
    }

    /// All expressions directly contained in this statement (not nested
    /// statements') — used by analyses like "which queries does f embed?".
    pub fn own_exprs(&self) -> Vec<&Expr> {
        match self {
            PlStmt::Assign { expr, .. } => vec![expr],
            PlStmt::If { branches, .. } => branches.iter().map(|(c, _)| c).collect(),
            PlStmt::CaseStmt {
                operand, branches, ..
            } => {
                let mut v: Vec<&Expr> = operand.iter().collect();
                for (vals, _) in branches {
                    v.extend(vals.iter());
                }
                v
            }
            PlStmt::While { cond, .. } => vec![cond],
            PlStmt::ForRange { from, to, by, .. } => {
                let mut v = vec![from, to];
                if let Some(b) = by {
                    v.push(b);
                }
                v
            }
            PlStmt::Exit { when, .. } | PlStmt::Continue { when, .. } => when.iter().collect(),
            PlStmt::Return { expr } => expr.iter().collect(),
            PlStmt::Raise { args, .. } => args.iter().collect(),
            PlStmt::Perform { expr } => vec![expr],
            PlStmt::Block { decls, .. } => decls.iter().filter_map(|d| d.init.as_ref()).collect(),
            PlStmt::Null | PlStmt::Loop { .. } | PlStmt::ForQuery { .. } => vec![],
        }
    }

    /// The queries this statement drives directly (the `FOR rec IN <query>`
    /// loop source) — not expressions, so reported separately from
    /// [`PlStmt::own_exprs`].
    pub fn own_queries(&self) -> Vec<&Query> {
        match self {
            PlStmt::ForQuery { query, .. } => vec![query],
            _ => vec![],
        }
    }
}

impl PlFunction {
    /// Count the embedded queries (expressions containing subqueries) —
    /// `walk` of Figure 3 has three (`Q1..Q3`).
    pub fn embedded_query_count(&self) -> usize {
        let mut n = 0;
        for d in &self.decls {
            if let Some(init) = &d.init {
                if init.has_subquery() {
                    n += 1;
                }
            }
        }
        for s in &self.body {
            s.walk(&mut |stmt| {
                n += stmt.own_exprs().iter().filter(|e| e.has_subquery()).count();
                // The loop source of a FOR-over-query is itself one
                // embedded query, whatever its shape.
                n += stmt.own_queries().len();
            });
        }
        n
    }
}
