//! PL/pgSQL abstract syntax.
//!
//! Expressions are SQL expressions ([`plaway_sql::ast::Expr`]); an embedded
//! query `Qi` is simply an expression containing a scalar subquery. This is
//! faithful to PostgreSQL, where `plpgsql` hands every expression to the SQL
//! parser.

use plaway_common::Type;
use plaway_sql::ast::Expr;

/// A parsed PL/pgSQL function.
#[derive(Debug, Clone, PartialEq)]
pub struct PlFunction {
    pub name: String,
    pub params: Vec<(String, Type)>,
    pub returns: Type,
    pub decls: Vec<VarDecl>,
    pub body: Vec<PlStmt>,
}

/// `DECLARE name type [:= init];`
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    pub name: String,
    pub ty: Type,
    pub init: Option<Expr>,
}

/// `RAISE <level> 'format' [, args]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaiseLevel {
    Debug,
    Notice,
    Info,
    Warning,
    Exception,
}

/// PL/pgSQL statements.
// The ForRange variant carries bounds/step expressions inline; boxing them
// would ripple `Box` through the parser, interpreter and compiler for a type
// that only ever lives inside already-heap-allocated statement lists.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum PlStmt {
    /// `var := expr;` (also accepts `=`).
    Assign { var: String, expr: Expr },
    /// `IF c THEN .. ELSIF c THEN .. ELSE .. END IF;`
    If {
        branches: Vec<(Expr, Vec<PlStmt>)>,
        else_: Vec<PlStmt>,
    },
    /// `CASE [operand] WHEN v THEN .. ELSE .. END CASE;`
    CaseStmt {
        operand: Option<Expr>,
        branches: Vec<(Vec<Expr>, Vec<PlStmt>)>,
        else_: Option<Vec<PlStmt>>,
    },
    /// `[<<label>>] LOOP .. END LOOP [label];`
    Loop {
        label: Option<String>,
        body: Vec<PlStmt>,
    },
    /// `[<<label>>] WHILE c LOOP .. END LOOP;`
    While {
        label: Option<String>,
        cond: Expr,
        body: Vec<PlStmt>,
    },
    /// `[<<label>>] FOR v IN [REVERSE] a..b [BY s] LOOP .. END LOOP;`
    ForRange {
        label: Option<String>,
        var: String,
        from: Expr,
        to: Expr,
        by: Option<Expr>,
        reverse: bool,
        body: Vec<PlStmt>,
    },
    /// `EXIT [label] [WHEN c];`
    Exit {
        label: Option<String>,
        when: Option<Expr>,
    },
    /// `CONTINUE [label] [WHEN c];`
    Continue {
        label: Option<String>,
        when: Option<Expr>,
    },
    /// `RETURN [expr];`
    Return { expr: Option<Expr> },
    /// `NULL;` — no-op.
    Null,
    /// `RAISE NOTICE 'fmt %' , args;`
    Raise {
        level: RaiseLevel,
        format: String,
        args: Vec<Expr>,
    },
    /// `PERFORM expr;` — evaluate and discard (used for side-effect-free
    /// warm-up queries in benchmarks).
    Perform { expr: Expr },
}

impl PlStmt {
    /// Visit this statement and all nested statements (pre-order).
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a PlStmt)) {
        f(self);
        match self {
            PlStmt::If { branches, else_ } => {
                for (_, stmts) in branches {
                    for s in stmts {
                        s.walk(f);
                    }
                }
                for s in else_ {
                    s.walk(f);
                }
            }
            PlStmt::CaseStmt {
                branches, else_, ..
            } => {
                for (_, stmts) in branches {
                    for s in stmts {
                        s.walk(f);
                    }
                }
                if let Some(stmts) = else_ {
                    for s in stmts {
                        s.walk(f);
                    }
                }
            }
            PlStmt::Loop { body, .. }
            | PlStmt::While { body, .. }
            | PlStmt::ForRange { body, .. } => {
                for s in body {
                    s.walk(f);
                }
            }
            _ => {}
        }
    }

    /// All expressions directly contained in this statement (not nested
    /// statements') — used by analyses like "which queries does f embed?".
    pub fn own_exprs(&self) -> Vec<&Expr> {
        match self {
            PlStmt::Assign { expr, .. } => vec![expr],
            PlStmt::If { branches, .. } => branches.iter().map(|(c, _)| c).collect(),
            PlStmt::CaseStmt {
                operand, branches, ..
            } => {
                let mut v: Vec<&Expr> = operand.iter().collect();
                for (vals, _) in branches {
                    v.extend(vals.iter());
                }
                v
            }
            PlStmt::While { cond, .. } => vec![cond],
            PlStmt::ForRange { from, to, by, .. } => {
                let mut v = vec![from, to];
                if let Some(b) = by {
                    v.push(b);
                }
                v
            }
            PlStmt::Exit { when, .. } | PlStmt::Continue { when, .. } => when.iter().collect(),
            PlStmt::Return { expr } => expr.iter().collect(),
            PlStmt::Raise { args, .. } => args.iter().collect(),
            PlStmt::Perform { expr } => vec![expr],
            PlStmt::Null | PlStmt::Loop { .. } => vec![],
        }
    }
}

impl PlFunction {
    /// Count the embedded queries (expressions containing subqueries) —
    /// `walk` of Figure 3 has three (`Q1..Q3`).
    pub fn embedded_query_count(&self) -> usize {
        let mut n = 0;
        let mut count = |e: &Expr| {
            if e.has_subquery() {
                n += 1;
            }
        };
        for d in &self.decls {
            if let Some(init) = &d.init {
                count(init);
            }
        }
        for s in &self.body {
            s.walk(&mut |stmt| {
                for e in stmt.own_exprs() {
                    count(e);
                }
            });
        }
        n
    }
}
