//! `plaway-plsql` — PL/pgSQL abstract syntax and parser.
//!
//! This front end covers the dialect the paper's functions exercise
//! (Figure 3's `walk`, plus `parse`, `traverse`, `fibonacci`): declarations
//! with initializers, assignments, `IF/ELSIF/ELSE`, all loop forms
//! (`LOOP`, `WHILE`, integer `FOR .. IN a..b [BY s]`, `REVERSE`, and the
//! cursor-style `FOR rec IN <query>`), labelled `EXIT`/`CONTINUE` with
//! `WHEN` conditions, nested blocks with `EXCEPTION WHEN .. THEN` handler
//! sections, `RETURN`, `RAISE` (format-string and named-condition forms),
//! `PERFORM`, and the `CASE` statement. Expressions — including the
//! embedded queries `Q1..Qn` — are plain SQL expressions, re-using
//! `plaway-sql`'s grammar.
//!
//! Deliberately unsupported (diagnosed with clear errors, see
//! DESIGN.md#unsupported-constructs): table-valued variables (PL/SQL itself
//! disallows them, paper §4), explicit cursors (`OPEN`/`FETCH`/`CLOSE`),
//! dynamic SQL (`EXECUTE`), `GET DIAGNOSTICS`, and bare re-raising `RAISE`.

#![warn(missing_docs)]

pub mod ast;
pub mod parser;
pub mod record;

pub use ast::*;
pub use parser::parse_function;

use plaway_common::Result;

/// Parse a complete `CREATE FUNCTION ... LANGUAGE plpgsql` statement into a
/// [`PlFunction`].
pub fn parse_create_function(sql: &str) -> Result<PlFunction> {
    let stmt = plaway_sql::parse_statement(sql)?;
    let plaway_sql::ast::Stmt::CreateFunction(cf) = stmt else {
        return Err(plaway_common::Error::parse(
            "expected CREATE FUNCTION",
            1,
            1,
        ));
    };
    parse_function(&cf)
}
