//! `plaway-plsql` — PL/pgSQL abstract syntax and parser.
//!
//! This front end covers the dialect the paper's functions exercise
//! (Figure 3's `walk`, plus `parse`, `traverse`, `fibonacci`): declarations
//! with initializers, assignments, `IF/ELSIF/ELSE`, all loop forms
//! (`LOOP`, `WHILE`, integer `FOR .. IN a..b [BY s]`, `REVERSE`), labelled
//! `EXIT`/`CONTINUE` with `WHEN` conditions, `RETURN`, `RAISE`, `PERFORM`,
//! and the `CASE` statement. Expressions — including the embedded queries
//! `Q1..Qn` — are plain SQL expressions, re-using `plaway-sql`'s grammar.
//!
//! Deliberately unsupported (diagnosed with clear errors, see DESIGN.md):
//! table-valued variables (PL/SQL itself disallows them, paper §4),
//! exceptions, cursors, dynamic SQL (`EXECUTE`).

pub mod ast;
pub mod parser;

pub use ast::*;
pub use parser::parse_function;

use plaway_common::Result;

/// Parse a complete `CREATE FUNCTION ... LANGUAGE plpgsql` statement into a
/// [`PlFunction`].
pub fn parse_create_function(sql: &str) -> Result<PlFunction> {
    let stmt = plaway_sql::parse_statement(sql)?;
    let plaway_sql::ast::Stmt::CreateFunction(cf) = stmt else {
        return Err(plaway_common::Error::parse(
            "expected CREATE FUNCTION",
            1,
            1,
        ));
    };
    parse_function(&cf)
}
