//! PL/pgSQL body parser.
//!
//! Reuses the SQL lexer and expression grammar: a PL/pgSQL expression simply
//! parses until a token the SQL grammar cannot continue with (`;`, `THEN`,
//! `LOOP`, ...), exactly how PostgreSQL's plpgsql scanner hands text to the
//! SQL parser.

use plaway_common::{Error, Result, Type};
use plaway_sql::ast::{CreateFunction, Language};
use plaway_sql::token::Sym;
use plaway_sql::Parser;

use crate::ast::{ExceptionHandler, PlFunction, PlStmt, RaiseLevel, VarDecl};

/// Parse the body of a `CREATE FUNCTION ... LANGUAGE plpgsql` statement.
pub fn parse_function(cf: &CreateFunction) -> Result<PlFunction> {
    if cf.language != Language::PlPgSql {
        return Err(Error::parse(
            format!("function {:?} is not LANGUAGE plpgsql", cf.name),
            1,
            1,
        ));
    }
    let params = cf
        .params
        .iter()
        .map(|(n, t)| Ok((n.clone(), Type::from_sql_name(t)?)))
        .collect::<Result<Vec<_>>>()?;
    let returns = Type::from_sql_name(&cf.returns)?;

    let mut p = BodyParser {
        p: Parser::new(&cf.body)?,
    };
    let (decls, body) = p.parse_block()?;
    Ok(PlFunction {
        name: cf.name.clone(),
        params,
        returns,
        decls,
        body,
    })
}

struct BodyParser {
    p: Parser,
}

impl BodyParser {
    /// `[DECLARE decls] BEGIN stmts [EXCEPTION handlers] END [;]`
    fn parse_block(&mut self) -> Result<(Vec<VarDecl>, Vec<PlStmt>)> {
        let mut decls = Vec::new();
        if self.p.eat_kw("declare") {
            while !self.p.peek().is_kw("begin") {
                decls.push(self.parse_decl()?);
            }
        }
        self.p.expect_kw("begin")?;
        let body = self.parse_stmts_until(&["end", "exception"])?;
        let handlers = self.parse_handlers()?;
        self.p.expect_kw("end")?;
        self.p.eat_sym(Sym::Semi);
        if !self.p.at_eof() {
            return Err(self.p.err_here("unexpected input after END"));
        }
        // A top-level EXCEPTION section protects the body exactly like a
        // nested block's would; represent it as one.
        let body = if handlers.is_empty() {
            body
        } else {
            vec![PlStmt::Block {
                decls: Vec::new(),
                body,
                handlers,
            }]
        };
        Ok((decls, body))
    }

    /// Statement-position `[DECLARE ..] BEGIN .. [EXCEPTION ..] END;`.
    fn parse_nested_block(&mut self) -> Result<PlStmt> {
        let mut decls = Vec::new();
        if self.p.eat_kw("declare") {
            while !self.p.peek().is_kw("begin") {
                decls.push(self.parse_decl()?);
            }
        }
        self.p.expect_kw("begin")?;
        let body = self.parse_stmts_until(&["end", "exception"])?;
        let handlers = self.parse_handlers()?;
        self.p.expect_kw("end")?;
        self.p.expect_sym(Sym::Semi)?;
        Ok(PlStmt::Block {
            decls,
            body,
            handlers,
        })
    }

    /// `EXCEPTION WHEN cond [OR cond].. THEN stmts ...` (empty when the
    /// block has no EXCEPTION section).
    fn parse_handlers(&mut self) -> Result<Vec<ExceptionHandler>> {
        let mut handlers = Vec::new();
        if !self.p.eat_kw("exception") {
            return Ok(handlers);
        }
        if !self.p.peek().is_kw("when") {
            return Err(self
                .p
                .err_here("EXCEPTION section needs at least one WHEN handler"));
        }
        while self.p.eat_kw("when") {
            let mut conditions = vec![self.p.expect_ident()?.to_ascii_lowercase()];
            while self.p.eat_kw("or") {
                conditions.push(self.p.expect_ident()?.to_ascii_lowercase());
            }
            self.p.expect_kw("then")?;
            let body = self.parse_stmts_until(&["when", "end"])?;
            handlers.push(ExceptionHandler { conditions, body });
        }
        Ok(handlers)
    }

    /// `name type [:= expr | = expr | DEFAULT expr] ;`
    fn parse_decl(&mut self) -> Result<VarDecl> {
        let name = self.p.expect_ident()?;
        let tyname = self.p.expect_ident()?;
        let ty = Type::from_sql_name(&tyname)?;
        let init =
            if self.p.eat_sym(Sym::Assign) || self.p.eat_sym(Sym::Eq) || self.p.eat_kw("default") {
                Some(self.p.parse_expr()?)
            } else {
                None
            };
        self.p.expect_sym(Sym::Semi)?;
        Ok(VarDecl { name, ty, init })
    }

    /// Parse statements until one of the given keywords is the lookahead
    /// (the keyword itself is not consumed).
    fn parse_stmts_until(&mut self, stops: &[&str]) -> Result<Vec<PlStmt>> {
        let mut out = Vec::new();
        loop {
            if self.p.at_eof() {
                return Err(self.p.err_here(format!(
                    "unexpected end of function body (expected one of {stops:?})"
                )));
            }
            if stops.iter().any(|s| self.p.peek().is_kw(s)) {
                return Ok(out);
            }
            out.push(self.parse_stmt()?);
        }
    }

    fn parse_stmt(&mut self) -> Result<PlStmt> {
        // Optional <<label>> before a loop statement.
        if self.p.eat_sym(Sym::LtLt) {
            let label = self.p.expect_ident()?;
            self.p.expect_sym(Sym::GtGt)?;
            return self.parse_loopish(Some(label));
        }
        if self.p.peek().is_kw("loop") || self.p.peek().is_kw("while") || self.p.peek().is_kw("for")
        {
            return self.parse_loopish(None);
        }
        if self.p.eat_kw("if") {
            return self.parse_if();
        }
        if self.p.peek().is_kw("case") {
            return self.parse_case_stmt();
        }
        if self.p.eat_kw("exit") {
            return self.parse_exit_continue(true);
        }
        if self.p.eat_kw("continue") {
            return self.parse_exit_continue(false);
        }
        if self.p.eat_kw("return") {
            let expr = if self.p.peek().is_sym(Sym::Semi) {
                None
            } else {
                Some(self.p.parse_expr()?)
            };
            self.p.expect_sym(Sym::Semi)?;
            return Ok(PlStmt::Return { expr });
        }
        if self.p.eat_kw("null") {
            self.p.expect_sym(Sym::Semi)?;
            return Ok(PlStmt::Null);
        }
        if self.p.eat_kw("raise") {
            return self.parse_raise();
        }
        if self.p.eat_kw("perform") {
            let expr = self.p.parse_expr()?;
            self.p.expect_sym(Sym::Semi)?;
            return Ok(PlStmt::Perform { expr });
        }
        if self.p.peek().is_kw("declare") || self.p.peek().is_kw("begin") {
            return self.parse_nested_block();
        }
        for unsupported in ["execute", "open", "fetch", "close", "get"] {
            if self.p.peek().is_kw(unsupported) {
                return Err(Error::unsupported(format!(
                    "PL/pgSQL construct {} is not supported by this reproduction \
                     (see DESIGN.md#unsupported-constructs for the supported dialect)",
                    unsupported.to_ascii_uppercase()
                )));
            }
        }

        // Assignment: ident (:= | =) expr ;
        let var = self.p.expect_ident()?;
        if !self.p.eat_sym(Sym::Assign) && !self.p.eat_sym(Sym::Eq) {
            return Err(self.p.err_here(format!(
                "expected ':=' or '=' after {var:?} (assignment is the only \
                 expression statement)"
            )));
        }
        let expr = self.p.parse_expr()?;
        self.p.expect_sym(Sym::Semi)?;
        Ok(PlStmt::Assign { var, expr })
    }

    fn parse_loopish(&mut self, label: Option<String>) -> Result<PlStmt> {
        if self.p.eat_kw("loop") {
            let body = self.parse_stmts_until(&["end"])?;
            self.end_loop()?;
            return Ok(PlStmt::Loop { label, body });
        }
        if self.p.eat_kw("while") {
            let cond = self.p.parse_expr()?;
            self.p.expect_kw("loop")?;
            let body = self.parse_stmts_until(&["end"])?;
            self.end_loop()?;
            return Ok(PlStmt::While { label, cond, body });
        }
        self.p.expect_kw("for")?;
        let var = self.p.expect_ident()?;
        self.p.expect_kw("in")?;
        // `FOR rec IN SELECT ... LOOP` — the cursor-style row loop. A query
        // source always starts with SELECT or WITH; anything else is the
        // integer range form.
        if self.p.peek().is_kw("select") || self.p.peek().is_kw("with") {
            let query = self.p.parse_query()?;
            self.p.expect_kw("loop")?;
            let body = self.parse_stmts_until(&["end"])?;
            self.end_loop()?;
            return Ok(PlStmt::ForQuery {
                label,
                var,
                query,
                body,
            });
        }
        let reverse = self.p.eat_kw("reverse");
        let from = self.p.parse_expr()?;
        // A parenthesized loop source — `FOR r IN (SELECT ...) LOOP` — parses
        // as a scalar-subquery expression; `LOOP` instead of `..` here means
        // it was the row-loop form all along.
        if !reverse && self.p.peek().is_kw("loop") {
            if let plaway_sql::ast::Expr::Subquery(query) = from {
                self.p.expect_kw("loop")?;
                let body = self.parse_stmts_until(&["end"])?;
                self.end_loop()?;
                return Ok(PlStmt::ForQuery {
                    label,
                    var,
                    query: *query,
                    body,
                });
            }
        }
        self.p.expect_sym(Sym::DotDot)?;
        let to = self.p.parse_expr()?;
        let by = if self.p.eat_kw("by") {
            Some(self.p.parse_expr()?)
        } else {
            None
        };
        self.p.expect_kw("loop")?;
        let body = self.parse_stmts_until(&["end"])?;
        self.end_loop()?;
        Ok(PlStmt::ForRange {
            label,
            var,
            from,
            to,
            by,
            reverse,
            body,
        })
    }

    /// `END LOOP [label] ;`
    fn end_loop(&mut self) -> Result<()> {
        self.p.expect_kw("end")?;
        self.p.expect_kw("loop")?;
        // Optional closing label (ignored but must be an identifier).
        if !self.p.peek().is_sym(Sym::Semi) {
            self.p.expect_ident()?;
        }
        self.p.expect_sym(Sym::Semi)?;
        Ok(())
    }

    fn parse_if(&mut self) -> Result<PlStmt> {
        let mut branches = Vec::new();
        let cond = self.p.parse_expr()?;
        self.p.expect_kw("then")?;
        let stmts = self.parse_stmts_until(&["elsif", "else", "end"])?;
        branches.push((cond, stmts));
        loop {
            if self.p.eat_kw("elsif") {
                let cond = self.p.parse_expr()?;
                self.p.expect_kw("then")?;
                let stmts = self.parse_stmts_until(&["elsif", "else", "end"])?;
                branches.push((cond, stmts));
            } else {
                break;
            }
        }
        let else_ = if self.p.eat_kw("else") {
            self.parse_stmts_until(&["end"])?
        } else {
            Vec::new()
        };
        self.p.expect_kw("end")?;
        self.p.expect_kw("if")?;
        self.p.expect_sym(Sym::Semi)?;
        Ok(PlStmt::If { branches, else_ })
    }

    /// `CASE [operand] WHEN v1 [, v2...] THEN stmts ... [ELSE stmts] END CASE;`
    fn parse_case_stmt(&mut self) -> Result<PlStmt> {
        // Distinguish the CASE *statement* from a CASE *expression* opening
        // an assignment — as a statement position construct, CASE here is
        // always the statement form.
        self.p.expect_kw("case")?;
        let operand = if self.p.peek().is_kw("when") {
            None
        } else {
            Some(self.p.parse_expr()?)
        };
        let mut branches = Vec::new();
        while self.p.eat_kw("when") {
            let mut vals = vec![self.p.parse_expr()?];
            while self.p.eat_sym(Sym::Comma) {
                vals.push(self.p.parse_expr()?);
            }
            self.p.expect_kw("then")?;
            let stmts = self.parse_stmts_until(&["when", "else", "end"])?;
            branches.push((vals, stmts));
        }
        if branches.is_empty() {
            return Err(self.p.err_here("CASE statement needs at least one WHEN"));
        }
        let else_ = if self.p.eat_kw("else") {
            Some(self.parse_stmts_until(&["end"])?)
        } else {
            None
        };
        self.p.expect_kw("end")?;
        self.p.expect_kw("case")?;
        self.p.expect_sym(Sym::Semi)?;
        Ok(PlStmt::CaseStmt {
            operand,
            branches,
            else_,
        })
    }

    fn parse_exit_continue(&mut self, is_exit: bool) -> Result<PlStmt> {
        let label = match self.p.peek() {
            k if k.is_kw("when") => None,
            plaway_sql::token::TokenKind::Ident(s) => {
                let s = s.clone();
                self.p.advance();
                Some(s)
            }
            _ => None,
        };
        let when = if self.p.eat_kw("when") {
            Some(self.p.parse_expr()?)
        } else {
            None
        };
        self.p.expect_sym(Sym::Semi)?;
        Ok(if is_exit {
            PlStmt::Exit { label, when }
        } else {
            PlStmt::Continue { label, when }
        })
    }

    fn parse_raise(&mut self) -> Result<PlStmt> {
        if self.p.peek().is_sym(Sym::Semi) {
            return Err(Error::unsupported(
                "bare RAISE (re-raising the active condition) is not supported \
                 by this reproduction (see DESIGN.md#unsupported-constructs)",
            ));
        }
        let level = if self.p.eat_kw("debug") {
            Some(RaiseLevel::Debug)
        } else if self.p.eat_kw("notice") {
            Some(RaiseLevel::Notice)
        } else if self.p.eat_kw("info") {
            Some(RaiseLevel::Info)
        } else if self.p.eat_kw("warning") {
            Some(RaiseLevel::Warning)
        } else if self.p.eat_kw("exception") {
            Some(RaiseLevel::Exception)
        } else {
            None
        };
        match self.p.peek().clone() {
            plaway_sql::token::TokenKind::Str(s) => {
                self.p.advance();
                let mut args = Vec::new();
                while self.p.eat_sym(Sym::Comma) {
                    args.push(self.p.parse_expr()?);
                }
                self.p.expect_sym(Sym::Semi)?;
                Ok(PlStmt::Raise {
                    level: level.unwrap_or(RaiseLevel::Notice),
                    format: s,
                    args,
                    condition: None,
                })
            }
            // `RAISE division_by_zero;` — a named condition, always at
            // EXCEPTION level (as in PostgreSQL).
            plaway_sql::token::TokenKind::Ident(name)
                if level.is_none() || level == Some(RaiseLevel::Exception) =>
            {
                self.p.advance();
                self.p.expect_sym(Sym::Semi)?;
                let name = name.to_ascii_lowercase();
                Ok(PlStmt::Raise {
                    level: RaiseLevel::Exception,
                    format: name.clone(),
                    args: Vec::new(),
                    condition: Some(name),
                })
            }
            _ => Err(self
                .p
                .err_here("RAISE requires a format string or condition name")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_create_function;
    use plaway_sql::ast::Expr;

    /// The paper's Figure 3 function, verbatim (modulo the window-function
    /// syntax already covered by the SQL tests).
    pub const WALK_SQL: &str = r#"
    CREATE FUNCTION walk(origin coord, win int, loose int, steps int)
    RETURNS int AS $$
    DECLARE
      reward int = 0;
      location coord = origin;
      movement text = '';
      roll float;
    BEGIN
      -- move robot repeatedly
      FOR step IN 1..steps LOOP
        movement = (SELECT p.action
                    FROM policy AS p
                    WHERE location = p.loc);
        roll = random();
        location =
          (SELECT move.loc
           FROM (SELECT a.there AS loc,
                        COALESCE(SUM(a.prob) OVER lt, 0.0) AS lo,
                        SUM(a.prob) OVER leq AS hi
                 FROM actions AS a
                 WHERE location = a.here AND movement = a.action
                 WINDOW leq AS (ORDER BY a.there),
                        lt AS (leq ROWS UNBOUNDED PRECEDING
                               EXCLUDE CURRENT ROW)
                ) AS move(loc, lo, hi)
           WHERE roll BETWEEN move.lo AND move.hi);
        reward = reward + (SELECT c.reward
                           FROM cells AS c
                           WHERE location = c.loc);
        IF reward >= win OR reward <= loose THEN
          RETURN step * sign(reward);
        END IF;
      END LOOP;
      RETURN 0;
    END;
    $$ LANGUAGE PLPGSQL;
    "#;

    #[test]
    fn parses_the_papers_walk_function() {
        let f = parse_create_function(WALK_SQL).unwrap();
        assert_eq!(f.name, "walk");
        assert_eq!(f.params.len(), 4);
        assert_eq!(f.params[0].0, "origin");
        assert_eq!(f.params[0].1, Type::coord());
        assert_eq!(f.returns, Type::Int);
        assert_eq!(f.decls.len(), 4);
        assert_eq!(f.decls[3].name, "roll");
        assert!(f.decls[3].init.is_none());
        // Body: FOR loop + trailing RETURN 0.
        assert_eq!(f.body.len(), 2);
        let PlStmt::ForRange { var, body, .. } = &f.body[0] else {
            panic!("first statement should be the FOR loop")
        };
        assert_eq!(var, "step");
        assert_eq!(body.len(), 5); // three assignments + roll + IF
                                   // The paper counts three embedded queries Q1..Q3.
        assert_eq!(f.embedded_query_count(), 3);
    }

    fn parse_body(body: &str) -> PlFunction {
        let sql = format!("CREATE FUNCTION f(n int) RETURNS int AS $$ {body} $$ LANGUAGE plpgsql");
        parse_create_function(&sql).unwrap()
    }

    fn parse_body_err(body: &str) -> Error {
        let sql = format!("CREATE FUNCTION f(n int) RETURNS int AS $$ {body} $$ LANGUAGE plpgsql");
        parse_create_function(&sql).unwrap_err()
    }

    #[test]
    fn while_loop_with_label_and_exit() {
        let f = parse_body(
            "BEGIN \
               <<outer>> WHILE n > 0 LOOP \
                 n := n - 1; \
                 EXIT outer WHEN n = 2; \
                 CONTINUE WHEN n % 2 = 0; \
               END LOOP; \
               RETURN n; \
             END",
        );
        let PlStmt::While { label, body, .. } = &f.body[0] else {
            panic!()
        };
        assert_eq!(label.as_deref(), Some("outer"));
        assert!(matches!(
            &body[1],
            PlStmt::Exit { label: Some(l), when: Some(_) } if l == "outer"
        ));
        assert!(matches!(
            &body[2],
            PlStmt::Continue {
                label: None,
                when: Some(_)
            }
        ));
    }

    #[test]
    fn for_reverse_and_by() {
        let f = parse_body("BEGIN FOR i IN REVERSE 10..1 BY 2 LOOP NULL; END LOOP; RETURN 0; END");
        let PlStmt::ForRange { reverse, by, .. } = &f.body[0] else {
            panic!()
        };
        assert!(*reverse);
        assert_eq!(by.as_ref(), Some(&Expr::int(2)));
    }

    #[test]
    fn if_elsif_else_nesting() {
        let f = parse_body(
            "BEGIN \
               IF n > 10 THEN RETURN 1; \
               ELSIF n > 5 THEN \
                 IF n = 7 THEN RETURN 7; END IF; \
                 RETURN 2; \
               ELSE RETURN 3; \
               END IF; \
             END",
        );
        let PlStmt::If { branches, else_ } = &f.body[0] else {
            panic!()
        };
        assert_eq!(branches.len(), 2);
        assert_eq!(else_.len(), 1);
        assert!(matches!(branches[1].1[0], PlStmt::If { .. }));
    }

    #[test]
    fn case_statement() {
        let f = parse_body(
            "BEGIN \
               CASE n WHEN 1, 2 THEN RETURN 12; WHEN 3 THEN RETURN 3; \
               ELSE RETURN 0; END CASE; \
             END",
        );
        let PlStmt::CaseStmt {
            operand,
            branches,
            else_,
        } = &f.body[0]
        else {
            panic!()
        };
        assert!(operand.is_some());
        assert_eq!(branches[0].0.len(), 2);
        assert!(else_.is_some());
    }

    #[test]
    fn raise_and_perform() {
        let f = parse_body("BEGIN RAISE NOTICE 'n is %', n; PERFORM n + 1; RETURN n; END");
        assert!(matches!(
            &f.body[0],
            PlStmt::Raise { level: RaiseLevel::Notice, args, .. } if args.len() == 1
        ));
        assert!(matches!(&f.body[1], PlStmt::Perform { .. }));
    }

    #[test]
    fn bare_return_and_null_statement() {
        let f = parse_body("BEGIN NULL; RETURN; END");
        assert!(matches!(f.body[0], PlStmt::Null));
        assert!(matches!(f.body[1], PlStmt::Return { expr: None }));
    }

    #[test]
    fn assignment_both_operators() {
        let f = parse_body("BEGIN n := 1; n = 2; RETURN n; END");
        assert!(matches!(&f.body[0], PlStmt::Assign { .. }));
        assert!(matches!(&f.body[1], PlStmt::Assign { .. }));
    }

    /// GitHub-style anchors of every heading in DESIGN.md (lowercase,
    /// punctuation stripped, spaces to hyphens) — the same transform
    /// `scripts/check_doc_anchors.sh` applies.
    fn design_md_anchors() -> Vec<String> {
        let design =
            std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../DESIGN.md"))
                .expect("DESIGN.md must exist at the repository root");
        design
            .lines()
            .filter_map(|l| l.strip_prefix('#'))
            .map(|l| l.trim_start_matches('#').trim())
            .map(|h| {
                h.to_ascii_lowercase()
                    .chars()
                    .filter(|c| c.is_ascii_alphanumeric() || *c == ' ' || *c == '-')
                    .collect::<String>()
                    .split_whitespace()
                    .collect::<Vec<_>>()
                    .join("-")
            })
            .collect()
    }

    #[test]
    fn unsupported_constructs_are_diagnosed_with_live_anchor() {
        let anchors = design_md_anchors();
        for (body, construct) in [
            ("BEGIN EXECUTE 'SELECT 1'; END", "EXECUTE"),
            ("BEGIN OPEN cur; END", "OPEN"),
            ("BEGIN FETCH cur INTO x; END", "FETCH"),
            ("BEGIN CLOSE cur; END", "CLOSE"),
            ("BEGIN GET DIAGNOSTICS n = ROW_COUNT; END", "GET"),
            ("BEGIN RAISE; END", "RAISE"),
        ] {
            let err = parse_body_err(body);
            assert!(matches!(err, Error::Unsupported(_)), "{body}: {err}");
            let msg = err.to_string();
            assert!(
                msg.contains(construct),
                "message must name the construct {construct}: {msg}"
            );
            let anchor: String = msg
                .split("DESIGN.md#")
                .nth(1)
                .unwrap_or_else(|| panic!("message must point at a DESIGN.md anchor: {msg}"))
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '-')
                .collect();
            assert!(
                anchors.contains(&anchor),
                "anchor #{anchor} in {construct}'s message does not resolve to any \
                 DESIGN.md heading (have: {anchors:?})"
            );
        }
    }

    #[test]
    fn exception_block_parses() {
        let f = parse_body(
            "BEGIN \
               BEGIN \
                 RAISE overflow; \
               EXCEPTION \
                 WHEN overflow OR underflow THEN RETURN 1; \
                 WHEN OTHERS THEN RETURN 2; \
               END; \
               RETURN 0; \
             END",
        );
        let PlStmt::Block {
            decls,
            body,
            handlers,
        } = &f.body[0]
        else {
            panic!("expected a nested block, got {:?}", f.body[0])
        };
        assert!(decls.is_empty());
        assert_eq!(body.len(), 1);
        assert_eq!(handlers.len(), 2);
        assert_eq!(handlers[0].conditions, vec!["overflow", "underflow"]);
        assert!(handlers[0].matches("underflow"));
        assert!(!handlers[0].matches("stray"));
        assert_eq!(handlers[1].conditions, vec!["others"]);
        assert!(handlers[1].matches("anything"));
        // The RAISE inside is the named-condition form.
        assert!(matches!(
            &body[0],
            PlStmt::Raise { condition: Some(c), level: RaiseLevel::Exception, .. } if c == "overflow"
        ));
    }

    #[test]
    fn top_level_exception_section_wraps_the_body() {
        let f = parse_body(
            "BEGIN RAISE EXCEPTION 'x'; RETURN 1; \
             EXCEPTION WHEN OTHERS THEN RETURN 2; END",
        );
        assert_eq!(f.body.len(), 1);
        let PlStmt::Block { handlers, .. } = &f.body[0] else {
            panic!()
        };
        assert_eq!(handlers.len(), 1);
    }

    #[test]
    fn nested_block_with_declare_parses() {
        let f = parse_body(
            "BEGIN \
               DECLARE x int := 1; BEGIN RETURN x; END; \
             END",
        );
        let PlStmt::Block { decls, .. } = &f.body[0] else {
            panic!()
        };
        assert_eq!(decls.len(), 1);
        assert_eq!(decls[0].name, "x");
    }

    #[test]
    fn empty_exception_section_is_an_error() {
        let err = parse_body_err("BEGIN BEGIN NULL; EXCEPTION END; RETURN 1; END");
        assert!(matches!(err, Error::Parse { .. }), "{err}");
    }

    #[test]
    fn for_over_query_parses() {
        let f = parse_body(
            "DECLARE s int := 0; \
             BEGIN \
               <<rows>> FOR r IN SELECT t.a AS a, t.b AS b FROM t LOOP \
                 s := s + r.a; \
                 EXIT rows WHEN r.b > 10; \
               END LOOP; \
               RETURN s; \
             END",
        );
        let PlStmt::ForQuery {
            label, var, body, ..
        } = &f.body[0]
        else {
            panic!("expected ForQuery, got {:?}", f.body[0])
        };
        assert_eq!(label.as_deref(), Some("rows"));
        assert_eq!(var, "r");
        assert_eq!(body.len(), 2);
        // The loop source counts as one embedded query.
        assert_eq!(f.embedded_query_count(), 1);
    }

    #[test]
    fn for_over_parenthesized_query_parses() {
        // PL/pgSQL also accepts a parenthesized loop source.
        let f = parse_body(
            "DECLARE s int := 0; \
             BEGIN \
               FOR r IN (SELECT t.a AS a FROM t) LOOP s := s + r.a; END LOOP; \
               RETURN s; \
             END",
        );
        assert!(matches!(&f.body[0], PlStmt::ForQuery { var, .. } if var == "r"));
        // Parenthesized range bounds still parse as a range.
        let f = parse_body("BEGIN FOR i IN (1)..(3) LOOP NULL; END LOOP; RETURN 0; END");
        assert!(matches!(&f.body[0], PlStmt::ForRange { .. }));
    }

    #[test]
    fn raise_condition_form_defaults_to_exception_level() {
        let f = parse_body("BEGIN RAISE division_by_zero; RETURN 1; END");
        assert!(matches!(
            &f.body[0],
            PlStmt::Raise { level: RaiseLevel::Exception, condition: Some(c), format, .. }
                if c == "division_by_zero" && format == "division_by_zero"
        ));
        // NOTICE with a condition name is not a thing.
        let err = parse_body_err("BEGIN RAISE NOTICE division_by_zero; END");
        assert!(matches!(err, Error::Parse { .. }), "{err}");
    }

    #[test]
    fn missing_semicolon_is_an_error() {
        let err = parse_body_err("BEGIN RETURN 1 END");
        assert!(matches!(err, Error::Parse { .. }), "{err}");
    }

    #[test]
    fn garbage_after_end_is_an_error() {
        let err = parse_body_err("BEGIN RETURN 1; END; banana");
        assert!(matches!(err, Error::Parse { .. }), "{err}");
    }

    #[test]
    fn decl_with_subquery_initializer() {
        let f = parse_body("DECLARE x int := (SELECT max(v) FROM t); BEGIN RETURN x; END");
        assert!(f.decls[0].init.as_ref().unwrap().has_subquery());
        assert_eq!(f.embedded_query_count(), 1);
    }

    #[test]
    fn sql_language_function_is_rejected() {
        let sql = "CREATE FUNCTION f(n int) RETURNS int AS $$ SELECT n $$ LANGUAGE SQL";
        assert!(parse_create_function(sql).is_err());
    }
}
