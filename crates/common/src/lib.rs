//! Shared foundation for the `plsql-away` workspace.
//!
//! This crate holds everything the SQL front end, the query engine, the
//! PL/pgSQL interpreter and the compiler agree on:
//!
//! * [`Value`] — the dynamically typed runtime value model (SQL scalars plus
//!   `ROW(...)` records, with three-valued logic),
//! * [`Type`] — the static type mirror used in signatures and casts,
//! * [`Error`] — the unified error hierarchy (lex/parse/plan/exec/compile),
//! * [`SessionRng`] — a deterministic per-session random number generator so
//!   `random()` is reproducible in tests and benchmarks.
//!
//! Nothing in here depends on the rest of the workspace.

pub mod error;
pub mod rng;
pub mod types;
pub mod value;

pub use error::{Error, Result};
pub use rng::SessionRng;
pub use types::Type;
pub use value::Value;
