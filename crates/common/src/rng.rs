//! Deterministic session RNG backing SQL's `random()`.
//!
//! PostgreSQL's `random()` draws from process-global state; replaying a paper
//! experiment therefore never produces the same robot walk twice. For a
//! reproduction we want the opposite: a per-session generator with an explicit
//! seed, so the interpreter and the compiled `WITH RECURSIVE` variant of a
//! function can be compared run-for-run. We use the xorshift64* generator —
//! tiny, fast, and plenty good for workload generation.

/// A seeded xorshift64* pseudo random number generator.
#[derive(Debug, Clone)]
pub struct SessionRng {
    state: u64,
}

impl SessionRng {
    /// Create a generator from a seed. A zero seed is remapped (xorshift
    /// state must be non-zero).
    pub fn new(seed: u64) -> Self {
        SessionRng {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform float in `[0, 1)` — the contract of SQL `random()`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 top bits → uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi]` (inclusive). Panics if `lo > hi`.
    pub fn next_range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as i64
    }

    /// Bernoulli draw with probability `p`.
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl Default for SessionRng {
    fn default() -> Self {
        SessionRng::new(0x5EED_5EED_5EED_5EED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SessionRng::new(42);
        let mut b = SessionRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SessionRng::new(1);
        let mut b = SessionRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = SessionRng::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
        }
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let mut r = SessionRng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn range_is_inclusive_and_bounded() {
        let mut r = SessionRng::new(3);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = r.next_range(-2, 2);
            assert!((-2..=2).contains(&v));
            seen_lo |= v == -2;
            seen_hi |= v == 2;
        }
        assert!(seen_lo && seen_hi, "bounds never drawn");
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = SessionRng::new(0);
        assert_ne!(r.next_u64(), 0);
    }
}
