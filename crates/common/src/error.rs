//! Unified error hierarchy for the whole workspace.
//!
//! Every layer (lexer, parser, planner, executor, PL/SQL interpreter and the
//! compiler) reports through this one [`Error`] type so that errors compose
//! across crate boundaries without conversion boilerplate.

use std::fmt;

/// Workspace-wide result alias.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Source position (1-based line / column) attached to front-end errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    pub line: u32,
    pub col: u32,
}

impl Pos {
    pub const fn new(line: u32, col: u32) -> Self {
        Pos { line, col }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// All the ways the system can fail, tagged by pipeline stage.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Tokenizer rejected the input (bad character, unterminated string, ...).
    Lex { msg: String, pos: Pos },
    /// Grammar violation while parsing SQL or PL/pgSQL.
    Parse { msg: String, pos: Pos },
    /// Semantic analysis / name resolution / planning failure.
    Plan(String),
    /// Runtime failure during query or function evaluation.
    Exec(String),
    /// Failure inside the PL/SQL-to-SQL compiler.
    Compile(String),
    /// A construct the reproduction deliberately does not support.
    Unsupported(String),
    /// A PL/pgSQL condition raised by `RAISE EXCEPTION` (or a raisable
    /// runtime condition such as `case_not_found`). Unlike [`Error::Exec`],
    /// a raised condition is *catchable*: `EXCEPTION WHEN <condition> THEN`
    /// handlers match on `condition`, and the compiled trampoline carries it
    /// as data (a tagged row) instead of aborting the query.
    Raised {
        /// Condition name, lowercased (`others` in a handler matches any).
        condition: String,
        /// Formatted message (the `RAISE` format string with `%` filled in).
        message: String,
    },
}

impl Error {
    pub fn lex(msg: impl Into<String>, line: u32, col: u32) -> Self {
        Error::Lex {
            msg: msg.into(),
            pos: Pos::new(line, col),
        }
    }

    pub fn parse(msg: impl Into<String>, line: u32, col: u32) -> Self {
        Error::Parse {
            msg: msg.into(),
            pos: Pos::new(line, col),
        }
    }

    pub fn plan(msg: impl Into<String>) -> Self {
        Error::Plan(msg.into())
    }

    pub fn exec(msg: impl Into<String>) -> Self {
        Error::Exec(msg.into())
    }

    pub fn compile(msg: impl Into<String>) -> Self {
        Error::Compile(msg.into())
    }

    pub fn unsupported(msg: impl Into<String>) -> Self {
        Error::Unsupported(msg.into())
    }

    pub fn raised(condition: impl Into<String>, message: impl Into<String>) -> Self {
        Error::Raised {
            condition: condition.into(),
            message: message.into(),
        }
    }

    /// Human-readable stage tag, useful in test assertions.
    pub fn stage(&self) -> &'static str {
        match self {
            Error::Lex { .. } => "lex",
            Error::Parse { .. } => "parse",
            Error::Plan(_) => "plan",
            Error::Exec(_) => "exec",
            Error::Compile(_) => "compile",
            Error::Unsupported(_) => "unsupported",
            Error::Raised { .. } => "raised",
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Lex { msg, pos } => write!(f, "lex error at {pos}: {msg}"),
            Error::Parse { msg, pos } => write!(f, "parse error at {pos}: {msg}"),
            Error::Plan(msg) => write!(f, "planning error: {msg}"),
            Error::Exec(msg) => write!(f, "execution error: {msg}"),
            Error::Compile(msg) => write!(f, "compile error: {msg}"),
            Error::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            Error::Raised { condition, message } => write!(f, "{condition}: {message}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = Error::parse("expected SELECT", 3, 14);
        assert_eq!(e.to_string(), "parse error at 3:14: expected SELECT");
        assert_eq!(e.stage(), "parse");
    }

    #[test]
    fn stage_tags_are_distinct() {
        let all = [
            Error::lex("x", 1, 1),
            Error::parse("x", 1, 1),
            Error::plan("x"),
            Error::exec("x"),
            Error::compile("x"),
            Error::unsupported("x"),
            Error::raised("overflow", "x"),
        ];
        let mut tags: Vec<_> = all.iter().map(|e| e.stage()).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), 7);
    }

    #[test]
    fn raised_display_leads_with_the_condition() {
        let e = Error::raised("division_by_zero", "division by zero");
        assert_eq!(e.to_string(), "division_by_zero: division by zero");
        assert_eq!(e.stage(), "raised");
    }
}
