//! Runtime values with SQL semantics.
//!
//! One dynamically tagged value type serves the whole stack: table cells,
//! PL/pgSQL variables, query parameters and the `ROW(...)` records the
//! compiler uses to encode recursive-call frames (Figure 9 of the paper).
//!
//! Semantics follow PostgreSQL where it matters for the reproduction:
//! three-valued logic (`NULL` propagates through operators and comparisons),
//! `int / int` is integer division, integer overflow is an error rather than
//! a wraparound, and `text` concatenation uses `||`.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::types::Type;

/// A dynamically typed SQL value.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Text(Arc<str>),
    /// Composite value: `ROW(v1, ..., vn)`. Cheap to clone (shared buffer).
    Record(Arc<[Value]>),
}

impl Value {
    /// Convenience `text` constructor.
    pub fn text(s: impl AsRef<str>) -> Value {
        Value::Text(Arc::from(s.as_ref()))
    }

    /// Convenience record constructor.
    pub fn record(fields: Vec<Value>) -> Value {
        Value::Record(Arc::from(fields))
    }

    /// The paper's `coord` composite `(x, y)`.
    pub fn coord(x: i64, y: i64) -> Value {
        Value::record(vec![Value::Int(x), Value::Int(y)])
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Runtime type tag. `Null` reports [`Type::Unknown`].
    pub fn type_of(&self) -> Type {
        match self {
            Value::Null => Type::Unknown,
            Value::Bool(_) => Type::Bool,
            Value::Int(_) => Type::Int,
            Value::Float(_) => Type::Float,
            Value::Text(_) => Type::Text,
            Value::Record(fs) => Type::Record(Arc::new(fs.iter().map(Value::type_of).collect())),
        }
    }

    /// Interpret as a WHERE-clause condition: `NULL` counts as not-true.
    pub fn is_true(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// Extract a bool, treating `NULL` as `None`.
    pub fn as_bool(&self) -> Result<Option<bool>> {
        match self {
            Value::Null => Ok(None),
            Value::Bool(b) => Ok(Some(*b)),
            other => Err(Error::exec(format!(
                "expected boolean, got {}",
                other.type_of()
            ))),
        }
    }

    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(Error::exec(format!(
                "expected int, got {} ({other})",
                other.type_of()
            ))),
        }
    }

    pub fn as_float(&self) -> Result<f64> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            other => Err(Error::exec(format!(
                "expected float, got {} ({other})",
                other.type_of()
            ))),
        }
    }

    pub fn as_text(&self) -> Result<&str> {
        match self {
            Value::Text(s) => Ok(s),
            other => Err(Error::exec(format!(
                "expected text, got {} ({other})",
                other.type_of()
            ))),
        }
    }

    pub fn as_record(&self) -> Result<&[Value]> {
        match self {
            Value::Record(fs) => Ok(fs),
            other => Err(Error::exec(format!(
                "expected record, got {} ({other})",
                other.type_of()
            ))),
        }
    }

    // ---------------------------------------------------------------- logic

    /// SQL equality under three-valued logic: `NULL = x` is `NULL` (`None`).
    #[inline]
    pub fn sql_eq(&self, other: &Value) -> Result<Option<bool>> {
        Ok(self.sql_cmp(other)?.map(|o| o == Ordering::Equal))
    }

    /// SQL comparison under three-valued logic. `None` when either side is
    /// `NULL`; an error when the operand types are incomparable.
    #[inline]
    pub fn sql_cmp(&self, other: &Value) -> Result<Option<Ordering>> {
        if let (Value::Int(a), Value::Int(b)) = (self, other) {
            return Ok(Some(a.cmp(b)));
        }
        use Value::*;
        Ok(match (self, other) {
            (Null, _) | (_, Null) => None,
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => Some(a.total_cmp(b)),
            (Int(a), Float(b)) => Some((*a as f64).total_cmp(b)),
            (Float(a), Int(b)) => Some(a.total_cmp(&(*b as f64))),
            (Text(a), Text(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (Record(a), Record(b)) => {
                if a.len() != b.len() {
                    return Err(Error::exec(format!(
                        "cannot compare records of width {} and {}",
                        a.len(),
                        b.len()
                    )));
                }
                // Row comparison: first NULL field makes the whole
                // comparison NULL (SQL row comparison semantics).
                let mut result = Ordering::Equal;
                for (x, y) in a.iter().zip(b.iter()) {
                    match x.sql_cmp(y)? {
                        None => return Ok(None),
                        Some(Ordering::Equal) => continue,
                        Some(o) => {
                            result = o;
                            break;
                        }
                    }
                }
                Some(result)
            }
            (a, b) => {
                return Err(Error::exec(format!(
                    "cannot compare {} with {}",
                    a.type_of(),
                    b.type_of()
                )))
            }
        })
    }

    /// Total order for `ORDER BY`, grouping and index keys. `NULL` sorts
    /// last (PostgreSQL's default for ascending order); incomparable types
    /// order by type tag so sorting never fails.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Bool(_) => 0,
                Int(_) | Float(_) => 1,
                Text(_) => 2,
                Record(_) => 3,
                Null => 4,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Text(a), Text(b)) => a.as_ref().cmp(b.as_ref()),
            (Record(a), Record(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    match x.total_cmp(y) {
                        Ordering::Equal => continue,
                        o => return o,
                    }
                }
                a.len().cmp(&b.len())
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    // ----------------------------------------------------------- arithmetic

    /// `self + other` with numeric coercion; `||`-style text concat is NOT
    /// folded in here (see [`Value::concat`]). The int/int case is matched
    /// directly (not via `Value::numeric_binop`'s function pointers) so
    /// hot evaluation loops can inline it.
    #[inline]
    pub fn add(&self, other: &Value) -> Result<Value> {
        if let (Value::Int(a), Value::Int(b)) = (self, other) {
            return a
                .checked_add(*b)
                .map(Value::Int)
                .ok_or_else(|| Error::exec("integer overflow in +"));
        }
        self.numeric_binop(other, "+", i64::checked_add, |a, b| a + b)
    }

    #[inline]
    pub fn sub(&self, other: &Value) -> Result<Value> {
        if let (Value::Int(a), Value::Int(b)) = (self, other) {
            return a
                .checked_sub(*b)
                .map(Value::Int)
                .ok_or_else(|| Error::exec("integer overflow in -"));
        }
        self.numeric_binop(other, "-", i64::checked_sub, |a, b| a - b)
    }

    #[inline]
    pub fn mul(&self, other: &Value) -> Result<Value> {
        if let (Value::Int(a), Value::Int(b)) = (self, other) {
            return a
                .checked_mul(*b)
                .map(Value::Int)
                .ok_or_else(|| Error::exec("integer overflow in *"));
        }
        self.numeric_binop(other, "*", i64::checked_mul, |a, b| a * b)
    }

    /// SQL division: `int / int` is integer division, division by zero is an
    /// error (not NULL), floats divide as floats.
    pub fn div(&self, other: &Value) -> Result<Value> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => Ok(Null),
            (Int(_), Int(0)) => Err(Error::exec("division by zero")),
            (Int(a), Int(b)) => a
                .checked_div(*b)
                .map(Int)
                .ok_or_else(|| Error::exec("integer overflow in /")),
            _ => {
                let b = other.as_float()?;
                if b == 0.0 {
                    return Err(Error::exec("division by zero"));
                }
                Ok(Float(self.as_float()? / b))
            }
        }
    }

    /// SQL modulo (`%` / `mod`), defined for integers.
    pub fn rem(&self, other: &Value) -> Result<Value> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => Ok(Null),
            (Int(_), Int(0)) => Err(Error::exec("division by zero in %")),
            (Int(a), Int(b)) => Ok(Int(a.wrapping_rem(*b))),
            (a, b) => Err(Error::exec(format!(
                "%: expected int operands, got {} and {}",
                a.type_of(),
                b.type_of()
            ))),
        }
    }

    pub fn neg(&self) -> Result<Value> {
        match self {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => i
                .checked_neg()
                .map(Value::Int)
                .ok_or_else(|| Error::exec("integer overflow in unary -")),
            Value::Float(f) => Ok(Value::Float(-f)),
            other => Err(Error::exec(format!("cannot negate {}", other.type_of()))),
        }
    }

    /// `||` string concatenation; NULL-propagating.
    pub fn concat(&self, other: &Value) -> Result<Value> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (a, b) => {
                let mut s = String::new();
                a.write_plain(&mut s)?;
                b.write_plain(&mut s)?;
                Ok(Value::text(s))
            }
        }
    }

    fn numeric_binop(
        &self,
        other: &Value,
        op: &str,
        int_op: fn(i64, i64) -> Option<i64>,
        float_op: fn(f64, f64) -> f64,
    ) -> Result<Value> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => Ok(Null),
            (Int(a), Int(b)) => int_op(*a, *b)
                .map(Int)
                .ok_or_else(|| Error::exec(format!("integer overflow in {op}"))),
            (Int(_) | Float(_), Int(_) | Float(_)) => {
                Ok(Float(float_op(self.as_float()?, other.as_float()?)))
            }
            (a, b) => Err(Error::exec(format!(
                "{op}: expected numeric operands, got {} and {}",
                a.type_of(),
                b.type_of()
            ))),
        }
    }

    // ----------------------------------------------------------------- cast

    /// `CAST(self AS ty)` with PostgreSQL-flavoured conversions.
    pub fn cast(&self, ty: &Type) -> Result<Value> {
        use Value::*;
        if self.is_null() {
            return Ok(Null);
        }
        Ok(match (self, ty) {
            (v, Type::Unknown) => v.clone(),
            (Bool(_), Type::Bool)
            | (Int(_), Type::Int)
            | (Float(_), Type::Float)
            | (Text(_), Type::Text) => self.clone(),
            (Int(i), Type::Float) => Float(*i as f64),
            (Float(f), Type::Int) => {
                // PostgreSQL rounds half away from zero for float -> int.
                let r = f.round();
                if r < i64::MIN as f64 || r > i64::MAX as f64 {
                    return Err(Error::exec("float out of int range in cast"));
                }
                Int(r as i64)
            }
            (Bool(b), Type::Int) => Int(i64::from(*b)),
            (Int(i), Type::Bool) => Bool(*i != 0),
            (Text(s), Type::Int) => Int(s
                .trim()
                .parse::<i64>()
                .map_err(|_| Error::exec(format!("invalid int literal {s:?}")))?),
            (Text(s), Type::Float) => Float(
                s.trim()
                    .parse::<f64>()
                    .map_err(|_| Error::exec(format!("invalid float literal {s:?}")))?,
            ),
            (Text(s), Type::Bool) => match s.trim().to_ascii_lowercase().as_str() {
                "t" | "true" | "yes" | "on" | "1" => Bool(true),
                "f" | "false" | "no" | "off" | "0" => Bool(false),
                _ => return Err(Error::exec(format!("invalid bool literal {s:?}"))),
            },
            (v, Type::Text) => {
                let mut s = String::new();
                v.write_plain(&mut s)?;
                Value::text(s)
            }
            (Record(fs), Type::Record(tys)) => {
                if tys.is_empty() {
                    self.clone()
                } else if tys.len() == fs.len() {
                    let cast: Result<Vec<Value>> =
                        fs.iter().zip(tys.iter()).map(|(v, t)| v.cast(t)).collect();
                    Value::record(cast?)
                } else {
                    return Err(Error::exec(format!(
                        "cannot cast record of width {} to width {}",
                        fs.len(),
                        tys.len()
                    )));
                }
            }
            (v, t) => return Err(Error::exec(format!("cannot cast {} to {}", v.type_of(), t))),
        })
    }

    // ------------------------------------------------------------- printing

    /// Write the value the way `psql` displays it (no quotes around text).
    fn write_plain(&self, out: &mut String) -> Result<()> {
        use fmt::Write;
        match self {
            Value::Null => {} // empty, like psql's default null display
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => write!(out, "{i}").unwrap(),
            Value::Float(f) => write!(out, "{}", format_float(*f)).unwrap(),
            Value::Text(s) => out.push_str(s),
            Value::Record(fs) => {
                out.push('(');
                for (i, f) in fs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    f.write_plain(out)?;
                }
                out.push(')');
            }
        }
        Ok(())
    }

    /// Render as a SQL literal that re-parses to the same value.
    pub fn to_sql_literal(&self) -> String {
        match self {
            Value::Null => "NULL".into(),
            Value::Bool(b) => if *b { "true" } else { "false" }.into(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => format_float(*f),
            Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
            Value::Record(fs) => {
                let inner: Vec<String> = fs.iter().map(Value::to_sql_literal).collect();
                format!("ROW({})", inner.join(", "))
            }
        }
    }

    /// Approximate on-page size in bytes, used by the tuplestore to account
    /// buffer page writes (Table 2 of the paper). Mirrors PostgreSQL datum
    /// sizes: 1 for bool, 8 for int/float, `len + 4` for varlena text.
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 8,
            Value::Text(s) => s.len() + 4,
            Value::Record(fs) => fs.iter().map(Value::size_bytes).sum::<usize>() + 8,
        }
    }
}

/// Render a float the way PostgreSQL does: integral values keep no trailing
/// `.0`... actually PostgreSQL prints `1` as `1`, but Rust's `{}` prints
/// `1` too; we force a decimal point so the literal re-parses as a float.
fn format_float(f: f64) -> String {
    if f.is_nan() {
        "'NaN'::float8".into()
    } else if f.is_infinite() {
        if f > 0.0 {
            "'Infinity'::float8".into()
        } else {
            "'-Infinity'::float8".into()
        }
    } else if f == f.trunc() && f.abs() < 1e15 {
        format!("{f:.1}")
    } else {
        // Ryu-style shortest representation via Rust's Display.
        format!("{f}")
    }
}

/// Equality for tests/grouping: delegates to the total order, so `NaN == NaN`
/// and `NULL == NULL` hold *here* (but not under SQL `=`).
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

/// Hash consistent with [`Value::total_cmp`]-equality, so values can key
/// group-by hash tables.
impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Ints and floats that compare equal must hash equal.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Text(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Record(fs) => {
                4u8.hash(state);
                for f in fs.iter() {
                    f.hash(state);
                }
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            _ => {
                let mut s = String::new();
                self.write_plain(&mut s).map_err(|_| fmt::Error)?;
                f.write_str(&s)
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::text(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_propagates_through_arithmetic() {
        let n = Value::Null;
        let one = Value::Int(1);
        assert!(n.add(&one).unwrap().is_null());
        assert!(one.mul(&n).unwrap().is_null());
        assert!(n.neg().unwrap().is_null());
        assert!(n.concat(&one).unwrap().is_null());
    }

    #[test]
    fn integer_division_truncates() {
        assert_eq!(
            Value::Int(7).div(&Value::Int(2)).unwrap(),
            Value::Int(3),
            "int/int must be integer division"
        );
        assert_eq!(
            Value::Int(7).div(&Value::Float(2.0)).unwrap(),
            Value::Float(3.5)
        );
    }

    #[test]
    fn division_by_zero_is_an_error() {
        assert!(Value::Int(1).div(&Value::Int(0)).is_err());
        assert!(Value::Float(1.0).div(&Value::Float(0.0)).is_err());
        assert!(Value::Int(1).rem(&Value::Int(0)).is_err());
    }

    #[test]
    fn overflow_is_an_error_not_wraparound() {
        assert!(Value::Int(i64::MAX).add(&Value::Int(1)).is_err());
        assert!(Value::Int(i64::MIN).neg().is_err());
        assert!(Value::Int(i64::MAX).mul(&Value::Int(2)).is_err());
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)).unwrap(),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(1.5).sql_cmp(&Value::Int(2)).unwrap(),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn sql_comparison_with_null_is_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)).unwrap(), None);
        assert_eq!(Value::Null.sql_eq(&Value::Null).unwrap(), None);
    }

    #[test]
    fn record_comparison_is_lexicographic() {
        let a = Value::coord(1, 5);
        let b = Value::coord(2, 0);
        assert_eq!(a.sql_cmp(&b).unwrap(), Some(Ordering::Less));
        assert_eq!(a.sql_eq(&Value::coord(1, 5)).unwrap(), Some(true));
    }

    #[test]
    fn record_comparison_null_field_is_unknown() {
        let a = Value::record(vec![Value::Int(1), Value::Null]);
        let b = Value::coord(1, 5);
        assert_eq!(a.sql_cmp(&b).unwrap(), None);
        // But a differing leading field decides before the NULL is reached.
        let c = Value::record(vec![Value::Int(0), Value::Null]);
        assert_eq!(c.sql_cmp(&b).unwrap(), Some(Ordering::Less));
    }

    #[test]
    fn incomparable_types_error() {
        assert!(Value::Int(1).sql_cmp(&Value::text("x")).is_err());
        assert!(Value::Bool(true).sql_cmp(&Value::Int(1)).is_err());
    }

    #[test]
    fn total_order_sorts_nulls_last() {
        let mut vs = vec![Value::Null, Value::Int(2), Value::Int(1)];
        vs.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(vs, vec![Value::Int(1), Value::Int(2), Value::Null]);
    }

    #[test]
    fn casts_round_trip_via_text() {
        for v in [
            Value::Int(42),
            Value::Float(2.5),
            Value::Bool(true),
            Value::text("hello"),
        ] {
            let t = v.type_of();
            let through_text = v.cast(&Type::Text).unwrap().cast(&t).unwrap();
            assert_eq!(through_text, v, "{v:?} did not survive text round trip");
        }
    }

    #[test]
    fn float_to_int_rounds() {
        assert_eq!(
            Value::Float(2.5).cast(&Type::Int).unwrap(),
            Value::Int(3),
            "PostgreSQL rounds, not truncates"
        );
        assert_eq!(Value::Float(-2.5).cast(&Type::Int).unwrap(), Value::Int(-3));
    }

    #[test]
    fn sql_literals_reparse_semantics() {
        assert_eq!(Value::text("it's").to_sql_literal(), "'it''s'");
        assert_eq!(Value::Float(1.0).to_sql_literal(), "1.0");
        assert_eq!(Value::coord(3, 2).to_sql_literal(), "ROW(3, 2)");
        assert_eq!(Value::Null.to_sql_literal(), "NULL");
    }

    #[test]
    fn hash_consistent_with_eq_for_mixed_numerics() {
        use std::collections::hash_map::DefaultHasher;
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        let i = Value::Int(3);
        let f = Value::Float(3.0);
        assert_eq!(i, f);
        assert_eq!(h(&i), h(&f));
    }

    #[test]
    fn size_bytes_tracks_text_length() {
        let short = Value::text("ab");
        let long = Value::text("a".repeat(100));
        assert!(long.size_bytes() > short.size_bytes());
        assert_eq!(long.size_bytes(), 104);
    }

    #[test]
    fn concat_behaves_like_pg() {
        assert_eq!(
            Value::text("ab").concat(&Value::Int(3)).unwrap(),
            Value::text("ab3")
        );
        assert!(Value::text("ab").concat(&Value::Null).unwrap().is_null());
    }
}
