//! Static SQL types.
//!
//! The engine is dynamically typed at runtime ([`crate::Value`] carries its
//! own tag) but function signatures, `CAST` targets and catalog schemas need a
//! static mirror. The paper's running example uses a composite `coord` type
//! for grid cells; we model composites as [`Type::Record`] and let the catalog
//! register `coord` as a named alias for `record(int, int)`.

use std::fmt;
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::value::Value;

/// Static SQL type used in schemas, signatures and casts.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    Bool,
    Int,
    Float,
    Text,
    /// Composite / `ROW` type. Empty field list means "record of unknown
    /// shape" (PostgreSQL's anonymous `record`).
    Record(Arc<Vec<Type>>),
    /// Placeholder for expressions whose type is not pinned down
    /// (e.g. a bare `NULL` literal).
    Unknown,
}

impl Type {
    /// Anonymous record of unknown shape.
    pub fn any_record() -> Type {
        Type::Record(Arc::new(Vec::new()))
    }

    /// The paper's `coord` composite: `(x int, y int)`.
    pub fn coord() -> Type {
        Type::Record(Arc::new(vec![Type::Int, Type::Int]))
    }

    /// Resolve a SQL type name as it appears in source text.
    ///
    /// `coord` is accepted here (rather than via a catalog lookup) because it
    /// is the one composite the paper's workloads need; everything else goes
    /// through the standard names.
    pub fn from_sql_name(name: &str) -> Result<Type> {
        let lower = name.to_ascii_lowercase();
        Ok(match lower.as_str() {
            "bool" | "boolean" => Type::Bool,
            "int" | "integer" | "int4" | "int8" | "bigint" | "smallint" => Type::Int,
            "float" | "float4" | "float8" | "real" | "double" | "numeric" | "decimal" => {
                Type::Float
            }
            "text" | "varchar" | "char" | "character" | "string" => Type::Text,
            "record" => Type::any_record(),
            "coord" => Type::coord(),
            _ => return Err(Error::plan(format!("unknown type name {name:?}"))),
        })
    }

    /// SQL spelling of the type (used by the pretty printer and `CAST`).
    pub fn sql_name(&self) -> String {
        match self {
            Type::Bool => "boolean".into(),
            Type::Int => "int".into(),
            Type::Float => "float8".into(),
            Type::Text => "text".into(),
            Type::Record(fields) if fields.len() == 2 && fields.iter().all(|t| *t == Type::Int) => {
                // Print the paper's well-known composite under its alias.
                "coord".into()
            }
            Type::Record(_) => "record".into(),
            Type::Unknown => "unknown".into(),
        }
    }

    /// Does a runtime value conform to this type? `Null` conforms to every
    /// type (SQL nullability), `Unknown` accepts everything.
    pub fn admits(&self, v: &Value) -> bool {
        match (self, v) {
            (_, Value::Null) | (Type::Unknown, _) => true,
            (Type::Bool, Value::Bool(_)) => true,
            (Type::Int, Value::Int(_)) => true,
            (Type::Float, Value::Float(_)) => true,
            // Ints are acceptable wherever floats are expected (implicit
            // numeric widening, as in PostgreSQL assignment casts).
            (Type::Float, Value::Int(_)) => true,
            (Type::Text, Value::Text(_)) => true,
            (Type::Record(fields), Value::Record(vals)) => {
                fields.is_empty()
                    || (fields.len() == vals.len()
                        && fields.iter().zip(vals.iter()).all(|(t, v)| t.admits(v)))
            }
            _ => false,
        }
    }

    /// Numeric type?
    pub fn is_numeric(&self) -> bool {
        matches!(self, Type::Int | Type::Float)
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.sql_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_standard_names() {
        assert_eq!(Type::from_sql_name("INT").unwrap(), Type::Int);
        assert_eq!(Type::from_sql_name("Boolean").unwrap(), Type::Bool);
        assert_eq!(Type::from_sql_name("float8").unwrap(), Type::Float);
        assert_eq!(Type::from_sql_name("TEXT").unwrap(), Type::Text);
        assert_eq!(Type::from_sql_name("coord").unwrap(), Type::coord());
        assert!(Type::from_sql_name("blob").is_err());
    }

    #[test]
    fn coord_round_trips_through_name() {
        let t = Type::coord();
        assert_eq!(t.sql_name(), "coord");
        assert_eq!(Type::from_sql_name(&t.sql_name()).unwrap(), t);
    }

    #[test]
    fn null_admits_everywhere() {
        for t in [
            Type::Bool,
            Type::Int,
            Type::Float,
            Type::Text,
            Type::coord(),
        ] {
            assert!(t.admits(&Value::Null));
        }
    }

    #[test]
    fn admits_checks_record_shape() {
        let t = Type::coord();
        assert!(t.admits(&Value::record(vec![Value::Int(1), Value::Int(2)])));
        assert!(!t.admits(&Value::record(vec![Value::Int(1)])));
        assert!(!t.admits(&Value::Int(3)));
        // Anonymous record admits any record.
        assert!(Type::any_record().admits(&Value::record(vec![Value::Bool(true)])));
    }

    #[test]
    fn int_widens_to_float() {
        assert!(Type::Float.admits(&Value::Int(7)));
        assert!(!Type::Int.admits(&Value::Float(7.0)));
    }
}
