//! SQL front end: lexer, AST, parser and pretty printer.
//!
//! This crate is shared by two consumers:
//!
//! * the query engine (`plaway-engine`) parses full SQL statements, and
//! * the PL/pgSQL front end (`plaway-plsql`) reuses the [`lexer`] and the
//!   expression grammar — PL/pgSQL expressions *are* SQL expressions, and
//!   embedded queries `Q1..Qn` are ordinary scalar subqueries.
//!
//! The dialect is the PostgreSQL subset the paper exercises, plus the
//! `WITH ITERATE` extension of Passing et al. (EDBT 2017) that §3 of the
//! paper implements inside PostgreSQL 11.3.

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod token;

pub use ast::*;
pub use lexer::Lexer;
pub use parser::Parser;

use plaway_common::Result;

/// Parse a complete SQL statement (query or DDL/DML).
pub fn parse_statement(sql: &str) -> Result<Stmt> {
    Parser::new(sql)?.parse_statement_eof()
}

/// Parse a sequence of `;`-separated SQL statements.
pub fn parse_statements(sql: &str) -> Result<Vec<Stmt>> {
    Parser::new(sql)?.parse_statements_eof()
}

/// Parse a single SELECT query.
pub fn parse_query(sql: &str) -> Result<Query> {
    Parser::new(sql)?.parse_query_eof()
}

/// Parse a single scalar expression (used by the PL/pgSQL front end).
pub fn parse_expr(sql: &str) -> Result<Expr> {
    Parser::new(sql)?.parse_expr_eof()
}
