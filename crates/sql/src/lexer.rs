//! Hand-written lexer for the SQL / PL/pgSQL token stream.
//!
//! Notable PostgreSQL-isms handled here:
//! * dollar quoting (`$$ ... $$`, `$body$ ... $body$`) for function bodies,
//! * `--` line comments and nested `/* ... */` block comments,
//! * `''` escape inside string literals,
//! * case folding of bare identifiers (quoted identifiers keep their case),
//! * the PL/pgSQL-only symbols `:=`, `..` (integer FOR ranges) and
//!   `<<` `>>` (statement labels).

use plaway_common::error::Pos;
use plaway_common::{Error, Result};

use crate::token::{Sym, Token, TokenKind};

/// Streaming lexer over source text.
pub struct Lexer<'a> {
    src: &'a [u8],
    text: &'a str,
    at: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    pub fn new(text: &'a str) -> Self {
        Lexer {
            src: text.as_bytes(),
            text,
            at: 0,
            line: 1,
            col: 1,
        }
    }

    /// Lex the whole input up front. The parser works on this vector.
    pub fn tokenize(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::with_capacity(self.src.len() / 4 + 4);
        loop {
            let tok = self.next_token()?;
            let done = tok.kind == TokenKind::Eof;
            out.push(tok);
            if done {
                return Ok(out);
            }
        }
    }

    fn pos(&self) -> Pos {
        Pos::new(self.line, self.col)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.at).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.at + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.at += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'-') if self.peek2() == Some(b'-') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos();
                    self.bump();
                    self.bump();
                    let mut depth = 1u32;
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.bump();
                                self.bump();
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            (Some(b'/'), Some(b'*')) => {
                                self.bump();
                                self.bump();
                                depth += 1;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(Error::lex(
                                    "unterminated block comment",
                                    start.line,
                                    start.col,
                                ))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token> {
        self.skip_trivia()?;
        let pos = self.pos();
        let Some(c) = self.peek() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                pos,
            });
        };

        let kind = match c {
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => self.lex_ident(),
            b'0'..=b'9' => self.lex_number(pos)?,
            b'.' if self.peek2().is_some_and(|d| d.is_ascii_digit()) => self.lex_number(pos)?,
            b'\'' => self.lex_string(pos)?,
            b'"' => self.lex_quoted_ident(pos)?,
            b'$' => self.lex_dollar(pos)?,
            _ => self.lex_symbol(pos)?,
        };
        Ok(Token { kind, pos })
    }

    fn lex_ident(&mut self) -> TokenKind {
        let start = self.at;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'$' {
                self.bump();
            } else {
                break;
            }
        }
        let raw = &self.text[start..self.at];
        // SQL folds unquoted identifiers; we fold to lowercase like PostgreSQL.
        TokenKind::Ident(raw.to_ascii_lowercase())
    }

    fn lex_number(&mut self, pos: Pos) -> Result<TokenKind> {
        let start = self.at;
        let mut seen_dot = false;
        let mut seen_exp = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => {
                    self.bump();
                }
                b'.' if !seen_dot && !seen_exp => {
                    // Leave `1..10` ranges alone: `..` is a token of its own.
                    if self.peek2() == Some(b'.') {
                        break;
                    }
                    seen_dot = true;
                    self.bump();
                }
                b'e' | b'E' if !seen_exp => {
                    seen_exp = true;
                    self.bump();
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        self.bump();
                    }
                }
                _ => break,
            }
        }
        let raw = &self.text[start..self.at];
        if raw.ends_with(['e', 'E']) || raw.ends_with('.') && raw.len() == 1 {
            return Err(Error::lex(
                format!("malformed numeric literal {raw:?}"),
                pos.line,
                pos.col,
            ));
        }
        Ok(TokenKind::Number(raw.to_string()))
    }

    fn lex_string(&mut self, pos: Pos) -> Result<TokenKind> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some(b'\'') => {
                    if self.peek() == Some(b'\'') {
                        self.bump();
                        s.push('\'');
                    } else {
                        return Ok(TokenKind::Str(s));
                    }
                }
                Some(c) => s.push(c as char),
                None => return Err(Error::lex("unterminated string literal", pos.line, pos.col)),
            }
        }
    }

    fn lex_quoted_ident(&mut self, pos: Pos) -> Result<TokenKind> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some(b'"') => {
                    if self.peek() == Some(b'"') {
                        self.bump();
                        s.push('"');
                    } else {
                        return Ok(TokenKind::QuotedIdent(s));
                    }
                }
                Some(c) => s.push(c as char),
                None => {
                    return Err(Error::lex(
                        "unterminated quoted identifier",
                        pos.line,
                        pos.col,
                    ))
                }
            }
        }
    }

    /// `$$body$$` or `$tag$body$tag$`. A bare `$` not opening a dollar quote
    /// is an error (we have no positional parameters in this dialect).
    fn lex_dollar(&mut self, pos: Pos) -> Result<TokenKind> {
        let save = (self.at, self.line, self.col);
        self.bump(); // $
        let tag_start = self.at;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        if self.peek() != Some(b'$') {
            // Not a dollar quote after all.
            (self.at, self.line, self.col) = save;
            return Err(Error::lex("unexpected character '$'", pos.line, pos.col));
        }
        let tag = self.text[tag_start..self.at].to_string();
        self.bump(); // closing $ of the opening delimiter
        let delim = format!("${tag}$");
        let body_start = self.at;
        // Find the closing delimiter.
        if let Some(rel) = self.text[self.at..].find(&delim) {
            let body = self.text[body_start..body_start + rel].to_string();
            // Advance over body + delimiter, maintaining line/col.
            for _ in 0..rel + delim.len() {
                self.bump();
            }
            Ok(TokenKind::DollarStr(body))
        } else {
            Err(Error::lex(
                format!("unterminated dollar-quoted string (missing {delim})"),
                pos.line,
                pos.col,
            ))
        }
    }

    fn lex_symbol(&mut self, pos: Pos) -> Result<TokenKind> {
        let c = self.bump().unwrap();
        let two = |lexer: &mut Self, sym| {
            lexer.bump();
            Ok(TokenKind::Sym(sym))
        };
        match c {
            b'(' => Ok(TokenKind::Sym(Sym::LParen)),
            b')' => Ok(TokenKind::Sym(Sym::RParen)),
            b',' => Ok(TokenKind::Sym(Sym::Comma)),
            b';' => Ok(TokenKind::Sym(Sym::Semi)),
            b'+' => Ok(TokenKind::Sym(Sym::Plus)),
            b'-' => Ok(TokenKind::Sym(Sym::Minus)),
            b'*' => Ok(TokenKind::Sym(Sym::Star)),
            b'/' => Ok(TokenKind::Sym(Sym::Slash)),
            b'%' => Ok(TokenKind::Sym(Sym::Percent)),
            b'=' => Ok(TokenKind::Sym(Sym::Eq)),
            b'.' => {
                if self.peek() == Some(b'.') {
                    two(self, Sym::DotDot)
                } else {
                    Ok(TokenKind::Sym(Sym::Dot))
                }
            }
            b'<' => match self.peek() {
                Some(b'=') => two(self, Sym::LtEq),
                Some(b'>') => two(self, Sym::NotEq),
                Some(b'<') => two(self, Sym::LtLt),
                _ => Ok(TokenKind::Sym(Sym::Lt)),
            },
            b'>' => match self.peek() {
                Some(b'=') => two(self, Sym::GtEq),
                Some(b'>') => two(self, Sym::GtGt),
                _ => Ok(TokenKind::Sym(Sym::Gt)),
            },
            b'!' => match self.peek() {
                Some(b'=') => two(self, Sym::NotEq),
                _ => Err(Error::lex("unexpected character '!'", pos.line, pos.col)),
            },
            b'|' => match self.peek() {
                Some(b'|') => two(self, Sym::Concat),
                _ => Err(Error::lex("unexpected character '|'", pos.line, pos.col)),
            },
            b':' => match self.peek() {
                Some(b'=') => two(self, Sym::Assign),
                Some(b':') => two(self, Sym::DoubleColon),
                _ => Err(Error::lex("unexpected character ':'", pos.line, pos.col)),
            },
            other => Err(Error::lex(
                format!("unexpected character {:?}", other as char),
                pos.line,
                pos.col,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        Lexer::new(sql)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_basic_select() {
        let ks = kinds("SELECT a, 42 FROM t WHERE a >= 1.5;");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("select".into()),
                TokenKind::Ident("a".into()),
                TokenKind::Sym(Sym::Comma),
                TokenKind::Number("42".into()),
                TokenKind::Ident("from".into()),
                TokenKind::Ident("t".into()),
                TokenKind::Ident("where".into()),
                TokenKind::Ident("a".into()),
                TokenKind::Sym(Sym::GtEq),
                TokenKind::Number("1.5".into()),
                TokenKind::Sym(Sym::Semi),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn folds_identifier_case_but_not_quoted() {
        let ks = kinds(r#"Foo "Bar""Baz""#);
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("foo".into()),
                TokenKind::QuotedIdent("Bar\"Baz".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            kinds("'it''s'"),
            vec![TokenKind::Str("it's".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn dollar_quoting_plain_and_tagged() {
        assert_eq!(
            kinds("$$ SELECT 1; $$"),
            vec![TokenKind::DollarStr(" SELECT 1; ".into()), TokenKind::Eof]
        );
        assert_eq!(
            kinds("$body$ x $$ y $body$"),
            vec![TokenKind::DollarStr(" x $$ y ".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn dotdot_range_vs_float() {
        assert_eq!(
            kinds("1..steps"),
            vec![
                TokenKind::Number("1".into()),
                TokenKind::Sym(Sym::DotDot),
                TokenKind::Ident("steps".into()),
                TokenKind::Eof
            ]
        );
        assert_eq!(
            kinds("1.5"),
            vec![TokenKind::Number("1.5".into()), TokenKind::Eof]
        );
        assert_eq!(
            kinds(".5"),
            vec![TokenKind::Number(".5".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn comments_are_skipped_including_nested() {
        assert_eq!(
            kinds("a -- comment\n/* outer /* inner */ still */ b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn plpgsql_symbols() {
        assert_eq!(
            kinds("x := 1 :: int << done >>"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Sym(Sym::Assign),
                TokenKind::Number("1".into()),
                TokenKind::Sym(Sym::DoubleColon),
                TokenKind::Ident("int".into()),
                TokenKind::Sym(Sym::LtLt),
                TokenKind::Ident("done".into()),
                TokenKind::Sym(Sym::GtGt),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn concat_and_comparisons() {
        assert_eq!(
            kinds("a || b <> c != d"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Sym(Sym::Concat),
                TokenKind::Ident("b".into()),
                TokenKind::Sym(Sym::NotEq),
                TokenKind::Ident("c".into()),
                TokenKind::Sym(Sym::NotEq),
                TokenKind::Ident("d".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn scientific_notation() {
        assert_eq!(
            kinds("1e-3 2.5E+10"),
            vec![
                TokenKind::Number("1e-3".into()),
                TokenKind::Number("2.5E+10".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn errors_carry_positions() {
        let err = Lexer::new("a\n  'oops").tokenize().unwrap_err();
        match err {
            Error::Lex { pos, .. } => {
                assert_eq!(pos.line, 2);
                assert_eq!(pos.col, 3);
            }
            other => panic!("expected lex error, got {other:?}"),
        }
    }

    #[test]
    fn unterminated_dollar_quote_errors() {
        assert!(Lexer::new("$$ never closed").tokenize().is_err());
        assert!(Lexer::new("$tag$ x $other$").tokenize().is_err());
    }

    #[test]
    fn line_tracking_across_dollar_quotes() {
        let toks = Lexer::new("$$a\nb$$ x").tokenize().unwrap();
        let x = toks.iter().find(|t| t.kind.is_kw("x")).unwrap();
        assert_eq!(x.pos.line, 2);
    }
}
