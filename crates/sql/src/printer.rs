//! SQL pretty printer.
//!
//! Produces text that re-parses to the same AST (property-tested). Used for
//! the compiler's generated queries (Figures 7–9 of the paper), error
//! messages, and the examples that show intermediate forms.

use std::fmt::Write;

use crate::ast::*;

/// Operator precedence used to decide parenthesization; mirrors the parser.
fn prec_of(e: &Expr) -> u8 {
    match e {
        Expr::Binary { op, .. } => match op {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => 5,
            BinOp::Concat => 7,
            BinOp::Add | BinOp::Sub => 8,
            BinOp::Mul | BinOp::Div | BinOp::Mod => 9,
        },
        Expr::Unary { op: UnOp::Not, .. } => 3,
        Expr::IsNull { .. } => 4,
        Expr::Between { .. }
        | Expr::InList { .. }
        | Expr::InSubquery { .. }
        | Expr::Like { .. } => 6,
        Expr::Unary { op: UnOp::Neg, .. } => 10,
        Expr::Cast { .. } => 11,
        _ => 12,
    }
}

/// Quote an identifier if it is not a plain lowercase name (or would clash
/// with syntax). Quoted form always re-lexes to the same identifier.
pub fn quote_ident(name: &str) -> String {
    let plain = !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
    // A handful of words the parser treats specially even in ident position.
    const NEEDS_QUOTES: &[&str] = &[
        "select",
        "from",
        "where",
        "group",
        "having",
        "order",
        "limit",
        "offset",
        "union",
        "except",
        "intersect",
        "case",
        "when",
        "then",
        "else",
        "end",
        "null",
        "true",
        "false",
        "and",
        "or",
        "not",
        "as",
        "on",
        "join",
        "left",
        "cross",
        "lateral",
        "exists",
        "row",
        "cast",
        "between",
        "in",
        "like",
        "is",
        "with",
        "values",
        "window",
        "over",
    ];
    if plain && !NEEDS_QUOTES.contains(&name) {
        name.to_string()
    } else {
        format!("\"{}\"", name.replace('"', "\"\""))
    }
}

/// Render an expression, parenthesizing children of lower precedence.
fn write_expr(out: &mut String, e: &Expr, min_prec: u8) {
    let p = prec_of(e);
    let need_parens = p < min_prec;
    if need_parens {
        out.push('(');
    }
    match e {
        Expr::Literal(v) => {
            let _ = write!(out, "{}", v.to_sql_literal());
        }
        Expr::Column { qualifier, name } => {
            if let Some(q) = qualifier {
                let _ = write!(out, "{}.{}", quote_ident(q), quote_ident(name));
            } else {
                let _ = write!(out, "{}", quote_ident(name));
            }
        }
        Expr::Param(name) => {
            // Parameters have no surface syntax; print as a column so the
            // text stays parseable (resolution re-creates the Param).
            let _ = write!(out, "{}", quote_ident(name));
        }
        Expr::Unary { op, expr } => match op {
            UnOp::Neg => {
                out.push('-');
                write_expr(out, expr, 10);
            }
            UnOp::Not => {
                out.push_str("NOT ");
                write_expr(out, expr, 3);
            }
        },
        Expr::Binary { op, left, right } => {
            // Left-assoc: left child may be same precedence, right must be
            // strictly higher.
            write_expr(out, left, p);
            let _ = write!(out, " {} ", op.sql());
            write_expr(out, right, p + 1);
        }
        Expr::IsNull { expr, negated } => {
            write_expr(out, expr, 5);
            out.push_str(if *negated { " IS NOT NULL" } else { " IS NULL" });
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            write_expr(out, expr, 7);
            out.push_str(if *negated {
                " NOT BETWEEN "
            } else {
                " BETWEEN "
            });
            write_expr(out, low, 7);
            out.push_str(" AND ");
            write_expr(out, high, 7);
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            write_expr(out, expr, 7);
            out.push_str(if *negated { " NOT IN (" } else { " IN (" });
            for (i, item) in list.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, item, 0);
            }
            out.push(')');
        }
        Expr::InSubquery {
            expr,
            query,
            negated,
        } => {
            write_expr(out, expr, 7);
            out.push_str(if *negated { " NOT IN (" } else { " IN (" });
            let _ = write!(out, "{query}");
            out.push(')');
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            write_expr(out, expr, 7);
            out.push_str(if *negated { " NOT LIKE " } else { " LIKE " });
            write_expr(out, pattern, 7);
        }
        Expr::Case {
            operand,
            branches,
            else_,
        } => {
            out.push_str("CASE");
            if let Some(op) = operand {
                out.push(' ');
                write_expr(out, op, 0);
            }
            for (when, then) in branches {
                out.push_str(" WHEN ");
                write_expr(out, when, 0);
                out.push_str(" THEN ");
                write_expr(out, then, 0);
            }
            if let Some(els) = else_ {
                out.push_str(" ELSE ");
                write_expr(out, els, 0);
            }
            out.push_str(" END");
        }
        Expr::Func { name, args } => {
            let _ = write!(out, "{}(", quote_ident(name));
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, a, 0);
            }
            out.push(')');
        }
        Expr::CountStar => out.push_str("count(*)"),
        Expr::WindowFunc { name, args, window } => {
            if name == "count" && args.is_empty() {
                out.push_str("count(*)");
            } else {
                let _ = write!(out, "{}(", quote_ident(name));
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_expr(out, a, 0);
                }
                out.push(')');
            }
            out.push_str(" OVER ");
            match window {
                WindowRef::Named(n) => {
                    let _ = write!(out, "{}", quote_ident(n));
                }
                WindowRef::Inline(spec) => {
                    out.push('(');
                    write_window_spec(out, spec);
                    out.push(')');
                }
            }
        }
        Expr::Subquery(q) => {
            let _ = write!(out, "({q})");
        }
        Expr::Exists(q) => {
            let _ = write!(out, "EXISTS ({q})");
        }
        Expr::Row(items) => {
            out.push_str("ROW(");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, item, 0);
            }
            out.push(')');
        }
        Expr::Cast { expr, ty } => {
            // Always use CAST() form: `::` on complex operands needs parens
            // anyway and CAST is unambiguous.
            out.push_str("CAST(");
            write_expr(out, expr, 0);
            let _ = write!(out, " AS {ty})");
        }
    }
    if need_parens {
        out.push(')');
    }
}

fn write_window_spec(out: &mut String, spec: &WindowSpec) {
    let mut first = true;
    let space = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push(' ');
        }
        *first = false;
    };
    if let Some(base) = &spec.base {
        space(out, &mut first);
        let _ = write!(out, "{}", quote_ident(base));
    }
    if !spec.partition_by.is_empty() {
        space(out, &mut first);
        out.push_str("PARTITION BY ");
        for (i, e) in spec.partition_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_expr(out, e, 0);
        }
    }
    if !spec.order_by.is_empty() {
        space(out, &mut first);
        out.push_str("ORDER BY ");
        write_order_items(out, &spec.order_by);
    }
    if let Some(frame) = &spec.frame {
        space(out, &mut first);
        out.push_str(match frame.units {
            FrameUnits::Rows => "ROWS",
            FrameUnits::Range => "RANGE",
        });
        let _ = write!(
            out,
            " BETWEEN {} AND {}",
            frame_bound(&frame.start),
            frame_bound(&frame.end)
        );
        if frame.exclude_current_row {
            out.push_str(" EXCLUDE CURRENT ROW");
        }
    }
}

fn frame_bound(b: &FrameBound) -> String {
    match b {
        FrameBound::UnboundedPreceding => "UNBOUNDED PRECEDING".into(),
        FrameBound::Preceding(n) => format!("{n} PRECEDING"),
        FrameBound::CurrentRow => "CURRENT ROW".into(),
        FrameBound::Following(n) => format!("{n} FOLLOWING"),
        FrameBound::UnboundedFollowing => "UNBOUNDED FOLLOWING".into(),
    }
}

fn write_order_items(out: &mut String, items: &[OrderItem]) {
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_expr(out, &item.expr, 0);
        if item.desc {
            out.push_str(" DESC");
        }
        match item.nulls_first {
            Some(true) => out.push_str(" NULLS FIRST"),
            Some(false) => out.push_str(" NULLS LAST"),
            None => {}
        }
    }
}

fn write_table_ref(out: &mut String, t: &TableRef) {
    match t {
        TableRef::Table { name, alias } => {
            let _ = write!(out, "{}", quote_ident(name));
            if let Some(a) = alias {
                write_alias(out, a);
            }
        }
        TableRef::Derived {
            lateral,
            query,
            alias,
        } => {
            if *lateral {
                out.push_str("LATERAL ");
            }
            let _ = write!(out, "({query})");
            write_alias(out, alias);
        }
        TableRef::Join {
            left,
            right,
            kind,
            lateral,
            on,
        } => {
            write_table_ref(out, left);
            out.push_str(match kind {
                JoinKind::Inner => " JOIN ",
                JoinKind::Left => " LEFT JOIN ",
                JoinKind::Cross => " CROSS JOIN ",
            });
            if *lateral {
                out.push_str("LATERAL ");
            }
            // Parenthesize nested joins on the right to keep associativity.
            if matches!(**right, TableRef::Join { .. }) {
                out.push('(');
                write_table_ref(out, right);
                out.push(')');
            } else {
                write_table_ref(out, right);
            }
            if let Some(on) = on {
                out.push_str(" ON ");
                write_expr(out, on, 0);
            }
        }
    }
}

fn write_alias(out: &mut String, a: &TableAlias) {
    let _ = write!(out, " AS {}", quote_ident(&a.name));
    if !a.columns.is_empty() {
        out.push('(');
        for (i, c) in a.columns.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}", quote_ident(c));
        }
        out.push(')');
    }
}

impl std::fmt::Display for Expr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = String::new();
        write_expr(&mut s, self, 0);
        f.write_str(&s)
    }
}

impl std::fmt::Display for Select {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        out.push_str("SELECT ");
        if self.distinct {
            out.push_str("DISTINCT ");
        }
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            match item {
                SelectItem::Wildcard => out.push('*'),
                SelectItem::QualifiedWildcard(q) => {
                    let _ = write!(out, "{}.*", quote_ident(q));
                }
                SelectItem::Expr { expr, alias } => {
                    write_expr(&mut out, expr, 0);
                    if let Some(a) = alias {
                        let _ = write!(out, " AS {}", quote_ident(a));
                    }
                }
            }
        }
        if !self.from.is_empty() {
            out.push_str(" FROM ");
            for (i, t) in self.from.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_table_ref(&mut out, t);
            }
        }
        if let Some(w) = &self.where_ {
            out.push_str(" WHERE ");
            write_expr(&mut out, w, 0);
        }
        if !self.group_by.is_empty() {
            out.push_str(" GROUP BY ");
            for (i, e) in self.group_by.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(&mut out, e, 0);
            }
        }
        if let Some(h) = &self.having {
            out.push_str(" HAVING ");
            write_expr(&mut out, h, 0);
        }
        if !self.windows.is_empty() {
            out.push_str(" WINDOW ");
            for (i, (name, spec)) in self.windows.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{} AS (", quote_ident(name));
                write_window_spec(&mut out, spec);
                out.push(')');
            }
        }
        f.write_str(&out)
    }
}

impl std::fmt::Display for SetExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SetExpr::Select(s) => write!(f, "{s}"),
            SetExpr::SetOp {
                op,
                all,
                left,
                right,
            } => {
                let opname = match op {
                    SetOp::Union => "UNION",
                    SetOp::Except => "EXCEPT",
                    SetOp::Intersect => "INTERSECT",
                };
                write!(
                    f,
                    "{left} {opname}{} {right}",
                    if *all { " ALL" } else { "" }
                )
            }
            SetExpr::Values(rows) => {
                let mut out = String::from("VALUES ");
                for (i, row) in rows.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push('(');
                    for (j, e) in row.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        write_expr(&mut out, e, 0);
                    }
                    out.push(')');
                }
                f.write_str(&out)
            }
            SetExpr::Query(q) => write!(f, "({q})"),
        }
    }
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        if let Some(with) = &self.with {
            out.push_str("WITH ");
            if with.recursive {
                out.push_str("RECURSIVE ");
            } else if with.iterate {
                out.push_str("ITERATE ");
            } else if with.retire {
                out.push_str("RETIRE ");
            }
            for (i, cte) in with.ctes.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{}", quote_ident(&cte.name));
                if !cte.columns.is_empty() {
                    out.push('(');
                    for (j, c) in cte.columns.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        let _ = write!(out, "{}", quote_ident(c));
                    }
                    out.push(')');
                }
                let _ = write!(out, " AS ({})", cte.query);
            }
            out.push(' ');
        }
        let _ = write!(out, "{}", self.body);
        if !self.order_by.is_empty() {
            out.push_str(" ORDER BY ");
            write_order_items(&mut out, &self.order_by);
        }
        if let Some(l) = &self.limit {
            out.push_str(" LIMIT ");
            write_expr(&mut out, l, 0);
        }
        if let Some(o) = &self.offset {
            out.push_str(" OFFSET ");
            write_expr(&mut out, o, 0);
        }
        f.write_str(&out)
    }
}

impl std::fmt::Display for Stmt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Stmt::Query(q) => write!(f, "{q}"),
            Stmt::Explain { analyze, stmt } => write!(
                f,
                "EXPLAIN {}{}",
                if *analyze { "ANALYZE " } else { "" },
                stmt
            ),
            Stmt::CreateTable {
                name,
                columns,
                if_not_exists,
            } => {
                let cols: Vec<String> = columns
                    .iter()
                    .map(|(c, t)| format!("{} {}", quote_ident(c), t))
                    .collect();
                write!(
                    f,
                    "CREATE TABLE {}{} ({})",
                    if *if_not_exists { "IF NOT EXISTS " } else { "" },
                    quote_ident(name),
                    cols.join(", ")
                )
            }
            Stmt::CreateIndex {
                name,
                table,
                column,
                using,
            } => write!(
                f,
                "CREATE INDEX {} ON {}{} ({})",
                quote_ident(name),
                quote_ident(table),
                using
                    .map(|m| format!(" USING {}", m.sql()))
                    .unwrap_or_default(),
                quote_ident(column)
            ),
            Stmt::CreateFunction(cf) => {
                let params: Vec<String> = cf
                    .params
                    .iter()
                    .map(|(p, t)| format!("{} {}", quote_ident(p), t))
                    .collect();
                // Choose a dollar-quote tag that does not occur in the body,
                // and print the body verbatim so CREATE FUNCTION round-trips.
                let mut tag = String::new();
                while cf.body.contains(&format!("${tag}$")) {
                    tag.push('q');
                }
                write!(
                    f,
                    "CREATE {}FUNCTION {}({}) RETURNS {} AS ${tag}${}${tag}$ LANGUAGE {}",
                    if cf.or_replace { "OR REPLACE " } else { "" },
                    quote_ident(&cf.name),
                    params.join(", "),
                    cf.returns,
                    cf.body,
                    match cf.language {
                        Language::Sql => "SQL",
                        Language::PlPgSql => "PLPGSQL",
                    }
                )
            }
            Stmt::Insert {
                table,
                columns,
                source,
            } => {
                let mut out = format!("INSERT INTO {}", quote_ident(table));
                if !columns.is_empty() {
                    let cols: Vec<String> = columns.iter().map(|c| quote_ident(c)).collect();
                    let _ = write!(out, " ({})", cols.join(", "));
                }
                match source {
                    InsertSource::Values(rows) => {
                        out.push_str(" VALUES ");
                        for (i, row) in rows.iter().enumerate() {
                            if i > 0 {
                                out.push_str(", ");
                            }
                            out.push('(');
                            for (j, e) in row.iter().enumerate() {
                                if j > 0 {
                                    out.push_str(", ");
                                }
                                write_expr(&mut out, e, 0);
                            }
                            out.push(')');
                        }
                    }
                    InsertSource::Query(q) => {
                        let _ = write!(out, " {q}");
                    }
                }
                f.write_str(&out)
            }
            Stmt::Update {
                table,
                sets,
                where_,
            } => {
                let mut out = format!("UPDATE {} SET ", quote_ident(table));
                for (i, (c, e)) in sets.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{} = ", quote_ident(c));
                    write_expr(&mut out, e, 0);
                }
                if let Some(w) = where_ {
                    out.push_str(" WHERE ");
                    write_expr(&mut out, w, 0);
                }
                f.write_str(&out)
            }
            Stmt::Delete { table, where_ } => {
                let mut out = format!("DELETE FROM {}", quote_ident(table));
                if let Some(w) = where_ {
                    out.push_str(" WHERE ");
                    write_expr(&mut out, w, 0);
                }
                f.write_str(&out)
            }
            Stmt::DropTable { name, if_exists } => write!(
                f,
                "DROP TABLE {}{}",
                if *if_exists { "IF EXISTS " } else { "" },
                quote_ident(name)
            ),
            Stmt::DropFunction { name, if_exists } => write!(
                f,
                "DROP FUNCTION {}{}",
                if *if_exists { "IF EXISTS " } else { "" },
                quote_ident(name)
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{parse_expr, parse_query, parse_statement};

    /// Print → parse must reproduce the same AST.
    fn roundtrip_expr(sql: &str) {
        let ast = parse_expr(sql).unwrap();
        let printed = ast.to_string();
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|e| panic!("printed form {printed:?} does not re-parse: {e}"));
        assert_eq!(ast, reparsed, "round trip changed AST for {printed:?}");
    }

    fn roundtrip_query(sql: &str) {
        let ast = parse_query(sql).unwrap();
        let printed = ast.to_string();
        let reparsed = parse_query(&printed)
            .unwrap_or_else(|e| panic!("printed form {printed:?} does not re-parse: {e}"));
        assert_eq!(ast, reparsed, "round trip changed AST for {printed:?}");
    }

    #[test]
    fn exprs_round_trip() {
        for sql in [
            "1 + 2 * 3",
            "(1 + 2) * 3",
            "-x + 1",
            "NOT a AND b OR c",
            "a || b || 'x'",
            "x BETWEEN 1 AND 2 OR y",
            "x NOT IN (1, 2, 3)",
            "CASE WHEN a THEN 1 ELSE 2 END",
            "CASE x WHEN 1 THEN 'a' WHEN 2 THEN 'b' END",
            "COALESCE(SUM(a.prob), 0.0)",
            "roll BETWEEN move.lo AND move.hi",
            "CAST(NULL AS int)",
            "x::float8::text",
            "ROW(true, ROW(1, 2), NULL)",
            "a IS NOT NULL",
            "(SELECT 1)",
            "EXISTS (SELECT 1 FROM t WHERE t.a = x)",
            "f(g(1), h())",
            "step * sign(reward)",
            "s LIKE 'a%'",
        ] {
            roundtrip_expr(sql);
        }
    }

    #[test]
    fn queries_round_trip() {
        for sql in [
            "SELECT 1",
            "SELECT a, b AS c FROM t WHERE a > 1 ORDER BY b DESC NULLS FIRST LIMIT 2 OFFSET 1",
            "SELECT DISTINCT x FROM t GROUP BY x HAVING COUNT(*) > 1",
            "SELECT * FROM a, b WHERE a.x = b.y",
            "SELECT t.* FROM t LEFT JOIN s ON t.a = s.a",
            "SELECT * FROM (SELECT 1) AS q(one) CROSS JOIN t",
            "SELECT * FROM run AS r, LATERAL (SELECT r.x) AS s(y)",
            "WITH RECURSIVE run(a, b) AS (SELECT 1, 2 UNION ALL SELECT a+1, b FROM run WHERE a < 3) SELECT * FROM run",
            "WITH ITERATE go(x) AS (SELECT 0 UNION ALL SELECT x+1 FROM go WHERE x < 9) SELECT x FROM go",
            "WITH RETIRE go(id, x) AS (SELECT 1, 0 UNION ALL SELECT id, x+1 FROM go WHERE x < 9) SELECT id, x FROM go",
            "VALUES (1, 'a'), (2, 'b')",
            "SELECT 1 UNION ALL SELECT 2",
            "SELECT sum(x) OVER w FROM t WINDOW w AS (ORDER BY y ROWS BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW EXCLUDE CURRENT ROW)",
            "SELECT count(*) OVER (PARTITION BY a ORDER BY b) FROM t",
        ] {
            roundtrip_query(sql);
        }
    }

    #[test]
    fn walk_q2_round_trips() {
        // The gnarliest query in the paper (Q2 of Figure 3).
        roundtrip_query(
            "SELECT move.loc \
             FROM (SELECT a.there AS loc, \
                          COALESCE(SUM(a.prob) OVER lt, 0.0) AS lo, \
                          SUM(a.prob) OVER leq AS hi \
                   FROM actions AS a \
                   WHERE location = a.here AND movement = a.action \
                   WINDOW leq AS (ORDER BY a.there), \
                          lt AS (leq ROWS UNBOUNDED PRECEDING EXCLUDE CURRENT ROW) \
                  ) AS move(loc, lo, hi) \
             WHERE roll BETWEEN move.lo AND move.hi",
        );
    }

    #[test]
    fn statements_round_trip() {
        for sql in [
            "CREATE TABLE t (a int, b text)",
            "INSERT INTO t (a, b) VALUES (1, 'x')",
            "INSERT INTO t SELECT * FROM s",
            "UPDATE t SET a = a + 1 WHERE b = 'x'",
            "DELETE FROM t WHERE a = 1",
            "DROP TABLE IF EXISTS t",
            "CREATE INDEX i ON t (a)",
            "CREATE INDEX i ON t USING btree (a)",
            "CREATE INDEX i ON t USING hash (a)",
            "EXPLAIN SELECT a FROM t WHERE a = 1",
            "EXPLAIN ANALYZE SELECT count(*) FROM t",
            "EXPLAIN ANALYZE INSERT INTO t (a, b) VALUES (1, 'x')",
        ] {
            let ast = parse_statement(sql).unwrap();
            let printed = ast.to_string();
            let reparsed = parse_statement(&printed)
                .unwrap_or_else(|e| panic!("{printed:?} does not re-parse: {e}"));
            assert_eq!(ast, reparsed);
        }
    }

    #[test]
    fn quoted_idents_round_trip() {
        roundtrip_query(r#"SELECT r."call?" FROM run AS r WHERE NOT r."call?""#);
        let ast = parse_statement(
            r#"CREATE FUNCTION "walk*"(n int) RETURNS int AS $$ SELECT n $$ LANGUAGE SQL"#,
        )
        .unwrap();
        let printed = ast.to_string();
        assert!(printed.contains("\"walk*\""));
        assert_eq!(parse_statement(&printed).unwrap(), ast);
    }

    #[test]
    fn precedence_parens_only_when_needed() {
        let e = parse_expr("(a + b) * c").unwrap();
        assert_eq!(e.to_string(), "(a + b) * c");
        let e = parse_expr("a + b * c").unwrap();
        assert_eq!(e.to_string(), "a + b * c");
    }
}
