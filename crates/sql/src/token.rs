//! Token vocabulary shared by the SQL and PL/pgSQL grammars.

use plaway_common::error::Pos;
use std::fmt;

/// A lexed token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub pos: Pos,
}

/// Token payloads.
///
/// Keywords are *not* a separate kind: SQL keywords are context dependent
/// (`row` is a function name in `ROW(...)` but a fine column alias elsewhere),
/// so the parser matches [`TokenKind::Ident`] case-insensitively instead.
/// Only quoted identifiers are marked, because they can never act as
/// keywords.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Bare identifier, stored lowercased (SQL folds unquoted idents).
    Ident(String),
    /// `"quoted identifier"` — case preserved, never a keyword.
    QuotedIdent(String),
    /// Numeric literal, textual form (`42`, `1.5`, `1e-3`).
    Number(String),
    /// `'string literal'` with `''` already unescaped.
    Str(String),
    /// `$$ dollar-quoted body $$` (or `$tag$ ... $tag$`), returned verbatim.
    DollarStr(String),
    /// Punctuation / operator.
    Sym(Sym),
    Eof,
}

/// Punctuation and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    LParen,
    RParen,
    Comma,
    Semi,
    Dot,
    DotDot,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Eq,
    NotEq, // <> or !=
    Lt,
    LtEq,
    Gt,
    GtEq,
    Concat,      // ||
    Assign,      // :=
    DoubleColon, // ::
    LtLt,        // << (PL/pgSQL label open)
    GtGt,        // >> (PL/pgSQL label close)
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Sym::LParen => "(",
            Sym::RParen => ")",
            Sym::Comma => ",",
            Sym::Semi => ";",
            Sym::Dot => ".",
            Sym::DotDot => "..",
            Sym::Plus => "+",
            Sym::Minus => "-",
            Sym::Star => "*",
            Sym::Slash => "/",
            Sym::Percent => "%",
            Sym::Eq => "=",
            Sym::NotEq => "<>",
            Sym::Lt => "<",
            Sym::LtEq => "<=",
            Sym::Gt => ">",
            Sym::GtEq => ">=",
            Sym::Concat => "||",
            Sym::Assign => ":=",
            Sym::DoubleColon => "::",
            Sym::LtLt => "<<",
            Sym::GtGt => ">>",
        };
        f.write_str(s)
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::QuotedIdent(s) => write!(f, "\"{s}\""),
            TokenKind::Number(s) => write!(f, "{s}"),
            TokenKind::Str(s) => write!(f, "'{s}'"),
            TokenKind::DollarStr(_) => write!(f, "$$...$$"),
            TokenKind::Sym(s) => write!(f, "{s}"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

impl TokenKind {
    /// Is this the given keyword (case-insensitive, unquoted idents only)?
    /// The lexer lowercases bare identifiers, so a simple compare suffices —
    /// callers must pass `kw` in lowercase.
    pub fn is_kw(&self, kw: &str) -> bool {
        debug_assert!(kw.chars().all(|c| !c.is_ascii_uppercase()));
        matches!(self, TokenKind::Ident(s) if s == kw)
    }

    pub fn is_sym(&self, sym: Sym) -> bool {
        matches!(self, TokenKind::Sym(s) if *s == sym)
    }
}
