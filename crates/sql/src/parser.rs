//! Recursive-descent parser for the SQL dialect.
//!
//! Expression parsing follows PostgreSQL's operator precedence:
//!
//! ```text
//!   OR < AND < NOT < IS < comparison < BETWEEN/IN/LIKE < || < +,- < *,/,% < unary < ::
//! ```
//!
//! The parser is shared with the PL/pgSQL front end, which calls back into
//! [`Parser::parse_expr`] for expressions and into [`Parser::parse_query`]
//! for embedded `(SELECT ...)` scalar subqueries and `FOR rec IN <query>`
//! loop sources.

use plaway_common::{Error, Result, Value};

use crate::ast::*;
use crate::lexer::Lexer;
use crate::token::{Sym, Token, TokenKind};

/// Identifiers that terminate an expression / cannot be a bare column alias.
const RESERVED: &[&str] = &[
    "from",
    "where",
    "group",
    "having",
    "order",
    "limit",
    "offset",
    "union",
    "except",
    "intersect",
    "on",
    "join",
    "left",
    "right",
    "full",
    "inner",
    "outer",
    "cross",
    "lateral",
    "as",
    "window",
    "values",
    "when",
    "then",
    "else",
    "end",
    "and",
    "or",
    "not",
    "asc",
    "desc",
    "nulls",
    "using",
    "returning",
    "with",
    "recursive",
    "iterate",
    "retire",
    "set",
    "into",
    "loop",
    "if",
    "elsif",
    "while",
    "for",
    "exit",
    "continue",
    "return",
    "begin",
    "declare",
    "case",
];

pub struct Parser {
    toks: Vec<Token>,
    at: usize,
}

impl Parser {
    pub fn new(text: &str) -> Result<Self> {
        Ok(Parser {
            toks: Lexer::new(text).tokenize()?,
            at: 0,
        })
    }

    /// Build a parser from pre-lexed tokens (used by the PL/pgSQL parser).
    pub fn from_tokens(toks: Vec<Token>) -> Self {
        Parser { toks, at: 0 }
    }

    // ------------------------------------------------------------ plumbing

    pub fn peek(&self) -> &TokenKind {
        &self.toks[self.at].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        self.toks
            .get(self.at + n)
            .map(|t| &t.kind)
            .unwrap_or(&TokenKind::Eof)
    }

    pub fn pos(&self) -> plaway_common::error::Pos {
        self.toks[self.at].pos
    }

    /// Index into the token stream — lets callers snapshot/restore.
    pub fn mark(&self) -> usize {
        self.at
    }

    pub fn reset(&mut self, mark: usize) {
        self.at = mark;
    }

    pub fn advance(&mut self) -> TokenKind {
        let t = self.toks[self.at].kind.clone();
        if self.at + 1 < self.toks.len() {
            self.at += 1;
        }
        t
    }

    pub fn err_here(&self, msg: impl Into<String>) -> Error {
        let pos = self.pos();
        Error::parse(
            format!("{} (found {})", msg.into(), self.peek()),
            pos.line,
            pos.col,
        )
    }

    /// Consume the keyword if present.
    pub fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    pub fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err_here(format!("expected {}", kw.to_ascii_uppercase())))
        }
    }

    pub fn eat_sym(&mut self, sym: Sym) -> bool {
        if self.peek().is_sym(sym) {
            self.advance();
            true
        } else {
            false
        }
    }

    pub fn expect_sym(&mut self, sym: Sym) -> Result<()> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(self.err_here(format!("expected '{sym}'")))
        }
    }

    pub fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    /// Any identifier (bare or quoted); bare ones come back lowercased.
    pub fn expect_ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.advance();
                Ok(s)
            }
            TokenKind::QuotedIdent(s) => {
                self.advance();
                Ok(s)
            }
            _ => Err(self.err_here("expected identifier")),
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.err_here("unexpected trailing input"))
        }
    }

    // ------------------------------------------------------- entry points

    pub fn parse_statement_eof(&mut self) -> Result<Stmt> {
        let stmt = self.parse_statement()?;
        self.eat_sym(Sym::Semi);
        self.expect_eof()?;
        Ok(stmt)
    }

    pub fn parse_statements_eof(&mut self) -> Result<Vec<Stmt>> {
        let mut out = Vec::new();
        loop {
            while self.eat_sym(Sym::Semi) {}
            if self.at_eof() {
                return Ok(out);
            }
            out.push(self.parse_statement()?);
            if !self.peek().is_sym(Sym::Semi) && !self.at_eof() {
                return Err(self.err_here("expected ';' between statements"));
            }
        }
    }

    pub fn parse_query_eof(&mut self) -> Result<Query> {
        let q = self.parse_query()?;
        self.eat_sym(Sym::Semi);
        self.expect_eof()?;
        Ok(q)
    }

    pub fn parse_expr_eof(&mut self) -> Result<Expr> {
        let e = self.parse_expr()?;
        self.expect_eof()?;
        Ok(e)
    }

    // --------------------------------------------------------- statements

    pub fn parse_statement(&mut self) -> Result<Stmt> {
        match self.peek() {
            k if k.is_kw("select") || k.is_kw("with") || k.is_kw("values") => {
                Ok(Stmt::Query(self.parse_query()?))
            }
            TokenKind::Sym(Sym::LParen) => Ok(Stmt::Query(self.parse_query()?)),
            k if k.is_kw("explain") => self.parse_explain(),
            k if k.is_kw("create") => self.parse_create(),
            k if k.is_kw("insert") => self.parse_insert(),
            k if k.is_kw("update") => self.parse_update(),
            k if k.is_kw("delete") => self.parse_delete(),
            k if k.is_kw("drop") => self.parse_drop(),
            _ => Err(self.err_here("expected a statement")),
        }
    }

    fn parse_explain(&mut self) -> Result<Stmt> {
        self.expect_kw("explain")?;
        let analyze = self.eat_kw("analyze");
        if self.peek().is_kw("explain") {
            return Err(self.err_here("EXPLAIN cannot be nested"));
        }
        let stmt = self.parse_statement()?;
        Ok(Stmt::Explain {
            analyze,
            stmt: Box::new(stmt),
        })
    }

    fn parse_create(&mut self) -> Result<Stmt> {
        self.expect_kw("create")?;
        let or_replace = if self.eat_kw("or") {
            self.expect_kw("replace")?;
            true
        } else {
            false
        };
        if self.eat_kw("table") {
            if or_replace {
                return Err(self.err_here("OR REPLACE is not valid for CREATE TABLE"));
            }
            return self.parse_create_table();
        }
        if self.eat_kw("index") {
            if or_replace {
                return Err(self.err_here("OR REPLACE is not valid for CREATE INDEX"));
            }
            return self.parse_create_index();
        }
        if self.eat_kw("function") {
            return self.parse_create_function(or_replace);
        }
        Err(self.err_here("expected TABLE, INDEX or FUNCTION after CREATE"))
    }

    fn parse_create_table(&mut self) -> Result<Stmt> {
        let if_not_exists = if self.eat_kw("if") {
            self.expect_kw("not")?;
            self.expect_kw("exists")?;
            true
        } else {
            false
        };
        let name = self.expect_ident()?;
        self.expect_sym(Sym::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.expect_ident()?;
            let ty = self.expect_ident()?;
            columns.push((col, ty));
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        self.expect_sym(Sym::RParen)?;
        Ok(Stmt::CreateTable {
            name,
            columns,
            if_not_exists,
        })
    }

    fn parse_create_index(&mut self) -> Result<Stmt> {
        let name = self.expect_ident()?;
        self.expect_kw("on")?;
        let table = self.expect_ident()?;
        let using = if self.eat_kw("using") {
            let method = self.expect_ident()?;
            Some(match method.to_ascii_lowercase().as_str() {
                "btree" => crate::ast::IndexMethod::Btree,
                "hash" => crate::ast::IndexMethod::Hash,
                other => {
                    return Err(self.err_here(format!(
                        "unknown index method {other:?} (expected btree or hash)"
                    )))
                }
            })
        } else {
            None
        };
        self.expect_sym(Sym::LParen)?;
        let column = self.expect_ident()?;
        self.expect_sym(Sym::RParen)?;
        Ok(Stmt::CreateIndex {
            name,
            table,
            column,
            using,
        })
    }

    fn parse_create_function(&mut self, or_replace: bool) -> Result<Stmt> {
        let name = self.expect_ident()?;
        self.expect_sym(Sym::LParen)?;
        let mut params = Vec::new();
        if !self.peek().is_sym(Sym::RParen) {
            loop {
                let pname = self.expect_ident()?;
                let ptype = self.expect_ident()?;
                params.push((pname, ptype));
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }
        self.expect_sym(Sym::RParen)?;
        self.expect_kw("returns")?;
        let returns = self.expect_ident()?;

        // AS $$..$$ LANGUAGE x — in either order.
        let mut body: Option<String> = None;
        let mut language: Option<Language> = None;
        for _ in 0..2 {
            if self.eat_kw("as") {
                match self.peek().clone() {
                    TokenKind::DollarStr(s) => {
                        self.advance();
                        body = Some(s);
                    }
                    TokenKind::Str(s) => {
                        self.advance();
                        body = Some(s);
                    }
                    _ => return Err(self.err_here("expected function body after AS")),
                }
            } else if self.eat_kw("language") {
                let lang = self.expect_ident()?;
                language = Some(match lang.as_str() {
                    "sql" => Language::Sql,
                    "plpgsql" => Language::PlPgSql,
                    other => return Err(self.err_here(format!("unsupported language {other:?}"))),
                });
            }
        }
        let body = body.ok_or_else(|| self.err_here("missing AS body in CREATE FUNCTION"))?;
        let language =
            language.ok_or_else(|| self.err_here("missing LANGUAGE in CREATE FUNCTION"))?;
        Ok(Stmt::CreateFunction(CreateFunction {
            or_replace,
            name,
            params,
            returns,
            language,
            body,
        }))
    }

    fn parse_insert(&mut self) -> Result<Stmt> {
        self.expect_kw("insert")?;
        self.expect_kw("into")?;
        let table = self.expect_ident()?;
        let mut columns = Vec::new();
        if self.peek().is_sym(Sym::LParen) {
            // Could be a column list or a parenthesized query; column list
            // is `(ident, ident, ...)` followed by VALUES/SELECT.
            let mark = self.mark();
            self.advance();
            let mut ok = true;
            let mut cols = Vec::new();
            loop {
                match self.peek().clone() {
                    TokenKind::Ident(s) | TokenKind::QuotedIdent(s) => {
                        self.advance();
                        cols.push(s);
                    }
                    _ => {
                        ok = false;
                        break;
                    }
                }
                if self.eat_sym(Sym::Comma) {
                    continue;
                }
                ok &= self.eat_sym(Sym::RParen);
                break;
            }
            if ok {
                columns = cols;
            } else {
                self.reset(mark);
            }
        }
        let source = if self.peek().is_kw("values") {
            self.advance();
            let mut rows = Vec::new();
            loop {
                self.expect_sym(Sym::LParen)?;
                let mut row = Vec::new();
                loop {
                    row.push(self.parse_expr()?);
                    if !self.eat_sym(Sym::Comma) {
                        break;
                    }
                }
                self.expect_sym(Sym::RParen)?;
                rows.push(row);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
            InsertSource::Values(rows)
        } else {
            InsertSource::Query(Box::new(self.parse_query()?))
        };
        Ok(Stmt::Insert {
            table,
            columns,
            source,
        })
    }

    fn parse_update(&mut self) -> Result<Stmt> {
        self.expect_kw("update")?;
        let table = self.expect_ident()?;
        self.expect_kw("set")?;
        let mut sets = Vec::new();
        loop {
            let col = self.expect_ident()?;
            self.expect_sym(Sym::Eq)?;
            sets.push((col, self.parse_expr()?));
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        let where_ = if self.eat_kw("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Stmt::Update {
            table,
            sets,
            where_,
        })
    }

    fn parse_delete(&mut self) -> Result<Stmt> {
        self.expect_kw("delete")?;
        self.expect_kw("from")?;
        let table = self.expect_ident()?;
        let where_ = if self.eat_kw("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Stmt::Delete { table, where_ })
    }

    fn parse_drop(&mut self) -> Result<Stmt> {
        self.expect_kw("drop")?;
        let is_table = if self.eat_kw("table") {
            true
        } else if self.eat_kw("function") {
            false
        } else {
            return Err(self.err_here("expected TABLE or FUNCTION after DROP"));
        };
        let if_exists = if self.eat_kw("if") {
            self.expect_kw("exists")?;
            true
        } else {
            false
        };
        let name = self.expect_ident()?;
        Ok(if is_table {
            Stmt::DropTable { name, if_exists }
        } else {
            Stmt::DropFunction { name, if_exists }
        })
    }

    // -------------------------------------------------------------- query

    pub fn parse_query(&mut self) -> Result<Query> {
        let with = if self.peek().is_kw("with") {
            Some(self.parse_with()?)
        } else {
            None
        };
        let body = self.parse_set_expr()?;
        let order_by = if self.eat_kw("order") {
            self.expect_kw("by")?;
            self.parse_order_items()?
        } else {
            Vec::new()
        };
        let limit = if self.eat_kw("limit") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let offset = if self.eat_kw("offset") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Query {
            with,
            body,
            order_by,
            limit,
            offset,
        })
    }

    fn parse_with(&mut self) -> Result<With> {
        self.expect_kw("with")?;
        let recursive = self.eat_kw("recursive");
        let iterate = !recursive && self.eat_kw("iterate");
        let retire = !recursive && !iterate && self.eat_kw("retire");
        let mut ctes = Vec::new();
        loop {
            let name = self.expect_ident()?;
            let mut columns = Vec::new();
            if self.eat_sym(Sym::LParen) {
                loop {
                    columns.push(self.expect_ident()?);
                    if !self.eat_sym(Sym::Comma) {
                        break;
                    }
                }
                self.expect_sym(Sym::RParen)?;
            }
            self.expect_kw("as")?;
            self.expect_sym(Sym::LParen)?;
            let query = self.parse_query()?;
            self.expect_sym(Sym::RParen)?;
            ctes.push(Cte {
                name,
                columns,
                query,
            });
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        Ok(With {
            recursive,
            iterate,
            retire,
            ctes,
        })
    }

    fn parse_set_expr(&mut self) -> Result<SetExpr> {
        let mut left = self.parse_set_term()?;
        loop {
            let op = if self.peek().is_kw("union") {
                SetOp::Union
            } else if self.peek().is_kw("except") {
                SetOp::Except
            } else if self.peek().is_kw("intersect") {
                SetOp::Intersect
            } else {
                return Ok(left);
            };
            self.advance();
            let all = self.eat_kw("all");
            if !all {
                self.eat_kw("distinct");
            }
            let right = self.parse_set_term()?;
            left = SetExpr::SetOp {
                op,
                all,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
    }

    fn parse_set_term(&mut self) -> Result<SetExpr> {
        if self.peek().is_kw("select") {
            Ok(SetExpr::Select(Box::new(self.parse_select()?)))
        } else if self.peek().is_kw("values") {
            self.advance();
            let mut rows = Vec::new();
            loop {
                self.expect_sym(Sym::LParen)?;
                let mut row = Vec::new();
                loop {
                    row.push(self.parse_expr()?);
                    if !self.eat_sym(Sym::Comma) {
                        break;
                    }
                }
                self.expect_sym(Sym::RParen)?;
                rows.push(row);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
            Ok(SetExpr::Values(rows))
        } else if self.eat_sym(Sym::LParen) {
            let q = self.parse_query()?;
            self.expect_sym(Sym::RParen)?;
            Ok(SetExpr::Query(Box::new(q)))
        } else {
            Err(self.err_here("expected SELECT, VALUES or subquery"))
        }
    }

    fn parse_select(&mut self) -> Result<Select> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        if !distinct {
            self.eat_kw("all");
        }
        let mut items = Vec::new();
        loop {
            items.push(self.parse_select_item()?);
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        let from = if self.eat_kw("from") {
            let mut refs = Vec::new();
            loop {
                refs.push(self.parse_table_ref()?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
            refs
        } else {
            Vec::new()
        };
        let where_ = if self.eat_kw("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let group_by = if self.eat_kw("group") {
            self.expect_kw("by")?;
            let mut g = vec![self.parse_expr()?];
            while self.eat_sym(Sym::Comma) {
                g.push(self.parse_expr()?);
            }
            g
        } else {
            Vec::new()
        };
        let having = if self.eat_kw("having") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut windows = Vec::new();
        if self.eat_kw("window") {
            loop {
                let name = self.expect_ident()?;
                self.expect_kw("as")?;
                self.expect_sym(Sym::LParen)?;
                let spec = self.parse_window_spec()?;
                self.expect_sym(Sym::RParen)?;
                windows.push((name, spec));
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }
        Ok(Select {
            distinct,
            items,
            from,
            where_,
            group_by,
            having,
            windows,
        })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if self.peek().is_sym(Sym::Star) {
            self.advance();
            return Ok(SelectItem::Wildcard);
        }
        // alias.*
        if let TokenKind::Ident(name) | TokenKind::QuotedIdent(name) = self.peek().clone() {
            if self.peek_at(1).is_sym(Sym::Dot) && self.peek_at(2).is_sym(Sym::Star) {
                self.advance();
                self.advance();
                self.advance();
                return Ok(SelectItem::QualifiedWildcard(name));
            }
        }
        let expr = self.parse_expr()?;
        let alias = self.parse_opt_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_opt_alias(&mut self) -> Result<Option<String>> {
        if self.eat_kw("as") {
            return Ok(Some(self.expect_ident()?));
        }
        match self.peek().clone() {
            TokenKind::Ident(s) if !RESERVED.contains(&s.as_str()) => {
                self.advance();
                Ok(Some(s))
            }
            TokenKind::QuotedIdent(s) => {
                self.advance();
                Ok(Some(s))
            }
            _ => Ok(None),
        }
    }

    // ---------------------------------------------------------- FROM items

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        let mut left = self.parse_table_primary()?;
        loop {
            let (kind, needs_on) = if self.eat_kw("cross") {
                self.expect_kw("join")?;
                (JoinKind::Cross, false)
            } else if self.eat_kw("inner") {
                self.expect_kw("join")?;
                (JoinKind::Inner, true)
            } else if self.peek().is_kw("join") {
                self.advance();
                (JoinKind::Inner, true)
            } else if self.peek().is_kw("left") {
                self.advance();
                self.eat_kw("outer");
                self.expect_kw("join")?;
                (JoinKind::Left, true)
            } else {
                return Ok(left);
            };
            let lateral = self.eat_kw("lateral");
            // The Join node carries the LATERAL marker; the inner Derived
            // keeps false so printing does not duplicate the keyword.
            let right = self.parse_table_primary_inner(false, lateral)?;
            let on = if needs_on {
                self.expect_kw("on")?;
                Some(self.parse_expr()?)
            } else {
                None
            };
            left = TableRef::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                lateral,
                on,
            };
        }
    }

    fn parse_table_primary(&mut self) -> Result<TableRef> {
        let lateral = self.eat_kw("lateral");
        self.parse_table_primary_inner(lateral, lateral)
    }

    /// `mark_lateral`: record LATERAL on the Derived node itself;
    /// `scope_lateral` only affects planning context and is currently the
    /// same thing for comma-list items.
    fn parse_table_primary_inner(
        &mut self,
        mark_lateral: bool,
        _scope_lateral: bool,
    ) -> Result<TableRef> {
        let lateral = mark_lateral;
        if self.eat_sym(Sym::LParen) {
            // Subquery or parenthesized join.
            if self.peek().is_kw("select")
                || self.peek().is_kw("with")
                || self.peek().is_kw("values")
            {
                let query = self.parse_query()?;
                self.expect_sym(Sym::RParen)?;
                let alias = self
                    .parse_table_alias()?
                    .unwrap_or_else(|| TableAlias::named("unnamed_subquery"));
                Ok(TableRef::Derived {
                    lateral,
                    query: Box::new(query),
                    alias,
                })
            } else {
                let inner = self.parse_table_ref()?;
                self.expect_sym(Sym::RParen)?;
                Ok(inner)
            }
        } else {
            let name = self.expect_ident()?;
            let alias = self.parse_table_alias()?;
            Ok(TableRef::Table { name, alias })
        }
    }

    fn parse_table_alias(&mut self) -> Result<Option<TableAlias>> {
        let name = if self.eat_kw("as") {
            self.expect_ident()?
        } else {
            match self.peek().clone() {
                TokenKind::Ident(s) if !RESERVED.contains(&s.as_str()) => {
                    self.advance();
                    s
                }
                TokenKind::QuotedIdent(s) => {
                    self.advance();
                    s
                }
                _ => return Ok(None),
            }
        };
        let mut columns = Vec::new();
        if self.eat_sym(Sym::LParen) {
            loop {
                columns.push(self.expect_ident()?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
            self.expect_sym(Sym::RParen)?;
        }
        Ok(Some(TableAlias { name, columns }))
    }

    // ------------------------------------------------------------- window

    fn parse_order_items(&mut self) -> Result<Vec<OrderItem>> {
        let mut items = Vec::new();
        loop {
            let expr = self.parse_expr()?;
            let desc = if self.eat_kw("desc") {
                true
            } else {
                self.eat_kw("asc");
                false
            };
            let nulls_first = if self.eat_kw("nulls") {
                if self.eat_kw("first") {
                    Some(true)
                } else {
                    self.expect_kw("last")?;
                    Some(false)
                }
            } else {
                None
            };
            items.push(OrderItem {
                expr,
                desc,
                nulls_first,
            });
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        Ok(items)
    }

    fn parse_window_spec(&mut self) -> Result<WindowSpec> {
        let mut spec = WindowSpec::default();
        // Optional base window name (inheritance): an identifier that is not
        // PARTITION / ORDER / ROWS / RANGE.
        if let TokenKind::Ident(s) = self.peek().clone() {
            if !["partition", "order", "rows", "range"].contains(&s.as_str()) {
                self.advance();
                spec.base = Some(s);
            }
        }
        if self.eat_kw("partition") {
            self.expect_kw("by")?;
            let mut list = vec![self.parse_expr()?];
            while self.eat_sym(Sym::Comma) {
                list.push(self.parse_expr()?);
            }
            spec.partition_by = list;
        }
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            spec.order_by = self.parse_order_items()?;
        }
        let units = if self.eat_kw("rows") {
            Some(FrameUnits::Rows)
        } else if self.eat_kw("range") {
            Some(FrameUnits::Range)
        } else {
            None
        };
        if let Some(units) = units {
            let (start, end) = if self.eat_kw("between") {
                let start = self.parse_frame_bound()?;
                self.expect_kw("and")?;
                let end = self.parse_frame_bound()?;
                (start, end)
            } else {
                (self.parse_frame_bound()?, FrameBound::CurrentRow)
            };
            let mut exclude_current_row = false;
            if self.eat_kw("exclude") {
                if self.eat_kw("current") {
                    self.expect_kw("row")?;
                    exclude_current_row = true;
                } else {
                    self.expect_kw("no")?;
                    self.expect_kw("others")?;
                }
            }
            spec.frame = Some(FrameSpec {
                units,
                start,
                end,
                exclude_current_row,
            });
        } else if self.eat_kw("exclude") {
            // EXCLUDE without explicit frame applies to the default frame.
            self.expect_kw("current")?;
            self.expect_kw("row")?;
            spec.frame = Some(FrameSpec {
                units: FrameUnits::Range,
                start: FrameBound::UnboundedPreceding,
                end: FrameBound::CurrentRow,
                exclude_current_row: true,
            });
        }
        Ok(spec)
    }

    fn parse_frame_bound(&mut self) -> Result<FrameBound> {
        if self.eat_kw("unbounded") {
            if self.eat_kw("preceding") {
                Ok(FrameBound::UnboundedPreceding)
            } else {
                self.expect_kw("following")?;
                Ok(FrameBound::UnboundedFollowing)
            }
        } else if self.eat_kw("current") {
            self.expect_kw("row")?;
            Ok(FrameBound::CurrentRow)
        } else {
            let n = match self.peek().clone() {
                TokenKind::Number(s) => {
                    self.advance();
                    s.parse::<u64>()
                        .map_err(|_| self.err_here("frame offset must be a non-negative integer"))?
                }
                _ => return Err(self.err_here("expected frame bound")),
            };
            if self.eat_kw("preceding") {
                Ok(FrameBound::Preceding(n))
            } else {
                self.expect_kw("following")?;
                Ok(FrameBound::Following(n))
            }
        }
    }

    // -------------------------------------------------------- expressions

    pub fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_kw("or") {
            let right = self.parse_and()?;
            left = Expr::binary(BinOp::Or, left, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_kw("and") {
            let right = self.parse_not()?;
            left = Expr::binary(BinOp::And, left, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            let inner = self.parse_not()?;
            Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(inner),
            })
        } else {
            self.parse_is()
        }
    }

    fn parse_is(&mut self) -> Result<Expr> {
        let mut expr = self.parse_comparison()?;
        while self.peek().is_kw("is") {
            self.advance();
            let negated = self.eat_kw("not");
            if self.eat_kw("null") {
                expr = Expr::IsNull {
                    expr: Box::new(expr),
                    negated,
                };
            } else if self.eat_kw("true") {
                let cmp = Expr::binary(BinOp::Eq, expr, Expr::bool(true));
                // IS TRUE is never NULL: wrap in COALESCE(.., false).
                let test = Expr::func("coalesce", vec![cmp, Expr::bool(false)]);
                expr = if negated {
                    Expr::Unary {
                        op: UnOp::Not,
                        expr: Box::new(test),
                    }
                } else {
                    test
                };
            } else if self.eat_kw("false") {
                let cmp = Expr::binary(BinOp::Eq, expr, Expr::bool(false));
                let test = Expr::func("coalesce", vec![cmp, Expr::bool(false)]);
                expr = if negated {
                    Expr::Unary {
                        op: UnOp::Not,
                        expr: Box::new(test),
                    }
                } else {
                    test
                };
            } else {
                return Err(self.err_here("expected NULL, TRUE or FALSE after IS"));
            }
        }
        Ok(expr)
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        let left = self.parse_membership()?;
        let op = match self.peek() {
            TokenKind::Sym(Sym::Eq) => BinOp::Eq,
            TokenKind::Sym(Sym::NotEq) => BinOp::NotEq,
            TokenKind::Sym(Sym::Lt) => BinOp::Lt,
            TokenKind::Sym(Sym::LtEq) => BinOp::LtEq,
            TokenKind::Sym(Sym::Gt) => BinOp::Gt,
            TokenKind::Sym(Sym::GtEq) => BinOp::GtEq,
            _ => return Ok(left),
        };
        self.advance();
        let right = self.parse_membership()?;
        Ok(Expr::binary(op, left, right))
    }

    /// BETWEEN / IN / LIKE level.
    fn parse_membership(&mut self) -> Result<Expr> {
        let expr = self.parse_concat()?;
        let negated = if self.peek().is_kw("not")
            && (self.peek_at(1).is_kw("between")
                || self.peek_at(1).is_kw("in")
                || self.peek_at(1).is_kw("like"))
        {
            self.advance();
            true
        } else {
            false
        };
        if self.eat_kw("between") {
            let low = self.parse_concat()?;
            self.expect_kw("and")?;
            let high = self.parse_concat()?;
            return Ok(Expr::Between {
                expr: Box::new(expr),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("in") {
            self.expect_sym(Sym::LParen)?;
            if self.peek().is_kw("select") || self.peek().is_kw("with") {
                let q = self.parse_query()?;
                self.expect_sym(Sym::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(expr),
                    query: Box::new(q),
                    negated,
                });
            }
            let mut list = vec![self.parse_expr()?];
            while self.eat_sym(Sym::Comma) {
                list.push(self.parse_expr()?);
            }
            self.expect_sym(Sym::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(expr),
                list,
                negated,
            });
        }
        if self.eat_kw("like") {
            let pattern = self.parse_concat()?;
            return Ok(Expr::Like {
                expr: Box::new(expr),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if negated {
            return Err(self.err_here("expected BETWEEN, IN or LIKE after NOT"));
        }
        Ok(expr)
    }

    fn parse_concat(&mut self) -> Result<Expr> {
        let mut left = self.parse_additive()?;
        while self.eat_sym(Sym::Concat) {
            let right = self.parse_additive()?;
            left = Expr::binary(BinOp::Concat, left, right);
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Sym(Sym::Plus) => BinOp::Add,
                TokenKind::Sym(Sym::Minus) => BinOp::Sub,
                _ => return Ok(left),
            };
            self.advance();
            let right = self.parse_multiplicative()?;
            left = Expr::binary(op, left, right);
        }
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Sym(Sym::Star) => BinOp::Mul,
                TokenKind::Sym(Sym::Slash) => BinOp::Div,
                TokenKind::Sym(Sym::Percent) => BinOp::Mod,
                _ => return Ok(left),
            };
            self.advance();
            let right = self.parse_unary()?;
            left = Expr::binary(op, left, right);
        }
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat_sym(Sym::Minus) {
            let inner = self.parse_unary()?;
            // Fold negation of numeric literals immediately so `-1` is a
            // literal, which matters for constant detection downstream.
            return Ok(match inner {
                Expr::Literal(Value::Int(i)) => Expr::int(-i),
                Expr::Literal(Value::Float(f)) => Expr::Literal(Value::Float(-f)),
                other => Expr::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(other),
                },
            });
        }
        if self.eat_sym(Sym::Plus) {
            return self.parse_unary();
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr> {
        let mut expr = self.parse_primary()?;
        while self.eat_sym(Sym::DoubleColon) {
            let ty = self.expect_ident()?;
            expr = Expr::Cast {
                expr: Box::new(expr),
                ty,
            };
        }
        Ok(expr)
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::Number(s) => {
                self.advance();
                self.number_literal(&s)
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Expr::str(s))
            }
            TokenKind::Sym(Sym::LParen) => {
                self.advance();
                // Scalar subquery?
                if self.peek().is_kw("select") || self.peek().is_kw("with") {
                    let q = self.parse_query()?;
                    self.expect_sym(Sym::RParen)?;
                    return Ok(Expr::Subquery(Box::new(q)));
                }
                let first = self.parse_expr()?;
                if self.eat_sym(Sym::Comma) {
                    // (a, b, ...) row constructor.
                    let mut items = vec![first];
                    loop {
                        items.push(self.parse_expr()?);
                        if !self.eat_sym(Sym::Comma) {
                            break;
                        }
                    }
                    self.expect_sym(Sym::RParen)?;
                    Ok(Expr::Row(items))
                } else {
                    self.expect_sym(Sym::RParen)?;
                    Ok(first)
                }
            }
            TokenKind::Ident(_) | TokenKind::QuotedIdent(_) => self.parse_ident_expr(),
            other => Err(self.err_here(format!("unexpected token {other} in expression"))),
        }
    }

    fn number_literal(&self, s: &str) -> Result<Expr> {
        if s.contains(['.', 'e', 'E']) {
            s.parse::<f64>()
                .map(|f| Expr::Literal(Value::Float(f)))
                .map_err(|_| self.err_here(format!("bad float literal {s}")))
        } else {
            s.parse::<i64>()
                .map(Expr::int)
                .map_err(|_| self.err_here(format!("integer literal {s} out of range")))
        }
    }

    fn parse_ident_expr(&mut self) -> Result<Expr> {
        // Keyword-led expression forms first (only for unquoted idents).
        if let TokenKind::Ident(word) = self.peek().clone() {
            // Truly reserved words cannot start an operand. This keeps
            // `SELECT FROM t` a syntax error and lets the PL/pgSQL grammar's
            // terminators (THEN, LOOP, ...) end embedded expressions cleanly.
            const PRIMARY_RESERVED: &[&str] = &[
                "from",
                "where",
                "group",
                "having",
                "order",
                "limit",
                "offset",
                "union",
                "except",
                "intersect",
                "on",
                "join",
                "as",
                "when",
                "then",
                "else",
                "end",
                "and",
                "or",
                "window",
                "values",
                "with",
                "loop",
                "if",
                "elsif",
                "while",
                "for",
                "exit",
                "continue",
                "return",
                "begin",
                "declare",
                "into",
                "set",
                "using",
                "select",
            ];
            if PRIMARY_RESERVED.contains(&word.as_str()) {
                return Err(self.err_here(format!(
                    "unexpected keyword {} in expression",
                    word.to_ascii_uppercase()
                )));
            }
            match word.as_str() {
                "null" => {
                    self.advance();
                    return Ok(Expr::null());
                }
                "true" => {
                    self.advance();
                    return Ok(Expr::bool(true));
                }
                "false" => {
                    self.advance();
                    return Ok(Expr::bool(false));
                }
                "case" => return self.parse_case(),
                "cast" => {
                    self.advance();
                    self.expect_sym(Sym::LParen)?;
                    let inner = self.parse_expr()?;
                    self.expect_kw("as")?;
                    let ty = self.expect_ident()?;
                    self.expect_sym(Sym::RParen)?;
                    return Ok(Expr::Cast {
                        expr: Box::new(inner),
                        ty,
                    });
                }
                "exists" => {
                    self.advance();
                    self.expect_sym(Sym::LParen)?;
                    let q = self.parse_query()?;
                    self.expect_sym(Sym::RParen)?;
                    return Ok(Expr::Exists(Box::new(q)));
                }
                "row" if self.peek_at(1).is_sym(Sym::LParen) => {
                    self.advance();
                    self.advance();
                    let mut items = Vec::new();
                    if !self.peek().is_sym(Sym::RParen) {
                        loop {
                            items.push(self.parse_expr()?);
                            if !self.eat_sym(Sym::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect_sym(Sym::RParen)?;
                    return Ok(Expr::Row(items));
                }
                _ => {}
            }
        }

        let name = self.expect_ident()?;

        // Function call?
        if self.peek().is_sym(Sym::LParen) {
            self.advance();
            // COUNT(*)
            if name == "count" && self.peek().is_sym(Sym::Star) {
                self.advance();
                self.expect_sym(Sym::RParen)?;
                return self.maybe_over("count_star", Vec::new(), true);
            }
            let mut args = Vec::new();
            if !self.peek().is_sym(Sym::RParen) {
                loop {
                    args.push(self.parse_expr()?);
                    if !self.eat_sym(Sym::Comma) {
                        break;
                    }
                }
            }
            self.expect_sym(Sym::RParen)?;
            return self.maybe_over(&name, args, false);
        }

        // Qualified column?
        if self.eat_sym(Sym::Dot) {
            let col = self.expect_ident()?;
            return Ok(Expr::qcol(name, col));
        }

        Ok(Expr::col(name))
    }

    /// After a function call, check for `OVER (...)` / `OVER name`.
    fn maybe_over(&mut self, name: &str, args: Vec<Expr>, star: bool) -> Result<Expr> {
        if self.eat_kw("over") {
            let window = if self.eat_sym(Sym::LParen) {
                let spec = self.parse_window_spec()?;
                self.expect_sym(Sym::RParen)?;
                WindowRef::Inline(spec)
            } else {
                WindowRef::Named(self.expect_ident()?)
            };
            let fname = if star {
                "count".to_string()
            } else {
                name.to_string()
            };
            return Ok(Expr::WindowFunc {
                name: fname,
                args,
                window,
            });
        }
        if star {
            return Ok(Expr::CountStar);
        }
        Ok(Expr::Func {
            name: name.to_string(),
            args,
        })
    }

    fn parse_case(&mut self) -> Result<Expr> {
        self.expect_kw("case")?;
        let operand = if self.peek().is_kw("when") {
            None
        } else {
            Some(Box::new(self.parse_expr()?))
        };
        let mut branches = Vec::new();
        while self.eat_kw("when") {
            let when = self.parse_expr()?;
            self.expect_kw("then")?;
            let then = self.parse_expr()?;
            branches.push((when, then));
        }
        if branches.is_empty() {
            return Err(self.err_here("CASE requires at least one WHEN branch"));
        }
        let else_ = if self.eat_kw("else") {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_kw("end")?;
        Ok(Expr::Case {
            operand,
            branches,
            else_,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_expr, parse_query, parse_statement};

    #[test]
    fn parses_simple_select() {
        let q =
            parse_query("SELECT a, b AS two FROM t WHERE a > 1 ORDER BY b DESC LIMIT 3").unwrap();
        let SetExpr::Select(sel) = &q.body else {
            panic!("not a select")
        };
        assert_eq!(sel.items.len(), 2);
        assert!(sel.where_.is_some());
        assert_eq!(q.order_by.len(), 1);
        assert!(q.order_by[0].desc);
        assert_eq!(q.limit, Some(Expr::int(3)));
    }

    #[test]
    fn precedence_and_or_cmp_arith() {
        // a + b * 2 = c OR d AND NOT e
        let e = parse_expr("a + b * 2 = c OR d AND NOT e").unwrap();
        // top must be OR
        let Expr::Binary {
            op: BinOp::Or,
            left,
            right,
        } = e
        else {
            panic!("top not OR")
        };
        assert!(matches!(*left, Expr::Binary { op: BinOp::Eq, .. }));
        assert!(matches!(*right, Expr::Binary { op: BinOp::And, .. }));
    }

    #[test]
    fn concat_binds_looser_than_plus() {
        let e = parse_expr("'a' || 1 + 2").unwrap();
        let Expr::Binary {
            op: BinOp::Concat,
            right,
            ..
        } = e
        else {
            panic!("top not ||")
        };
        assert!(matches!(*right, Expr::Binary { op: BinOp::Add, .. }));
    }

    #[test]
    fn between_keeps_and_for_itself() {
        let e = parse_expr("roll BETWEEN move.lo AND move.hi").unwrap();
        assert!(matches!(e, Expr::Between { .. }));
        // NOT BETWEEN
        let e = parse_expr("x NOT BETWEEN 1 AND 2 AND y").unwrap();
        let Expr::Binary {
            op: BinOp::And,
            left,
            ..
        } = e
        else {
            panic!("top not AND")
        };
        assert!(matches!(*left, Expr::Between { negated: true, .. }));
    }

    #[test]
    fn scalar_subquery_and_exists() {
        let e = parse_expr("(SELECT p.action FROM policy AS p WHERE location = p.loc)").unwrap();
        assert!(matches!(e, Expr::Subquery(_)));
        let e = parse_expr("EXISTS (SELECT 1 FROM t)").unwrap();
        assert!(matches!(e, Expr::Exists(_)));
    }

    #[test]
    fn case_with_and_without_operand() {
        let e = parse_expr("CASE WHEN a THEN 1 WHEN b THEN 2 ELSE 3 END").unwrap();
        let Expr::Case {
            operand, branches, ..
        } = e
        else {
            panic!()
        };
        assert!(operand.is_none());
        assert_eq!(branches.len(), 2);

        let e = parse_expr("CASE x WHEN 1 THEN 'one' END").unwrap();
        let Expr::Case { operand, else_, .. } = e else {
            panic!()
        };
        assert!(operand.is_some());
        assert!(else_.is_none());
    }

    #[test]
    fn window_function_with_named_windows() {
        let q = parse_query(
            "SELECT a.there, COALESCE(SUM(a.prob) OVER lt, 0.0) AS lo, \
             SUM(a.prob) OVER leq AS hi \
             FROM actions AS a \
             WINDOW leq AS (ORDER BY a.there), \
                    lt AS (leq ROWS UNBOUNDED PRECEDING EXCLUDE CURRENT ROW)",
        )
        .unwrap();
        let SetExpr::Select(sel) = &q.body else {
            panic!()
        };
        assert_eq!(sel.windows.len(), 2);
        assert_eq!(sel.windows[1].1.base.as_deref(), Some("leq"));
        let frame = sel.windows[1].1.frame.as_ref().unwrap();
        assert!(frame.exclude_current_row);
        assert_eq!(frame.units, FrameUnits::Rows);
        assert_eq!(frame.start, FrameBound::UnboundedPreceding);
    }

    #[test]
    fn left_join_lateral_chain() {
        let q = parse_query(
            "SELECT * FROM (SELECT 1) AS _0(movement2) \
             LEFT JOIN LATERAL (SELECT random()) AS _1(roll) ON true \
             LEFT JOIN LATERAL (SELECT 2) AS _2(location2) ON true",
        )
        .unwrap();
        let SetExpr::Select(sel) = &q.body else {
            panic!()
        };
        assert_eq!(sel.from.len(), 1);
        let TableRef::Join {
            kind,
            lateral,
            left,
            ..
        } = &sel.from[0]
        else {
            panic!("not a join")
        };
        assert_eq!(*kind, JoinKind::Left);
        assert!(lateral);
        assert!(matches!(**left, TableRef::Join { .. }));
    }

    #[test]
    fn with_recursive_and_iterate() {
        let q = parse_query(
            "WITH RECURSIVE run(x) AS (SELECT 1 UNION ALL SELECT x+1 FROM run WHERE x < 5) \
             SELECT x FROM run",
        )
        .unwrap();
        let with = q.with.unwrap();
        assert!(with.recursive);
        assert!(!with.iterate);
        assert_eq!(with.ctes[0].columns, vec!["x"]);

        let q = parse_query(
            "WITH ITERATE run(x) AS (SELECT 1 UNION ALL SELECT x+1 FROM run WHERE x < 5) \
             SELECT x FROM run",
        )
        .unwrap();
        assert!(q.with.unwrap().iterate);

        let q = parse_query(
            "WITH RETIRE run(id, x) AS (SELECT 1, 0 UNION ALL SELECT id, x+1 FROM run WHERE x < 5) \
             SELECT id, x FROM run",
        )
        .unwrap();
        let with = q.with.unwrap();
        assert!(with.retire);
        assert!(!with.recursive && !with.iterate);
    }

    #[test]
    fn create_function_both_clause_orders() {
        for sql in [
            "CREATE FUNCTION f(a int) RETURNS int AS $$ SELECT a $$ LANGUAGE SQL",
            "CREATE FUNCTION f(a int) RETURNS int LANGUAGE SQL AS $$ SELECT a $$",
        ] {
            let Stmt::CreateFunction(cf) = parse_statement(sql).unwrap() else {
                panic!()
            };
            assert_eq!(cf.name, "f");
            assert_eq!(cf.params, vec![("a".into(), "int".into())]);
            assert_eq!(cf.language, Language::Sql);
            assert_eq!(cf.body.trim(), "SELECT a");
        }
    }

    #[test]
    fn create_or_replace_plpgsql_function() {
        let Stmt::CreateFunction(cf) = parse_statement(
            "CREATE OR REPLACE FUNCTION walk(origin coord, win int) RETURNS int \
             AS $$ BEGIN RETURN 0; END; $$ LANGUAGE PLPGSQL",
        )
        .unwrap() else {
            panic!()
        };
        assert!(cf.or_replace);
        assert_eq!(cf.language, Language::PlPgSql);
        assert_eq!(cf.params[0], ("origin".into(), "coord".into()));
    }

    #[test]
    fn insert_values_and_select() {
        let Stmt::Insert { table, source, .. } =
            parse_statement("INSERT INTO t VALUES (1, 'a'), (2, 'b')").unwrap()
        else {
            panic!()
        };
        assert_eq!(table, "t");
        assert!(matches!(source, InsertSource::Values(rows) if rows.len() == 2));

        let Stmt::Insert {
            columns, source, ..
        } = parse_statement("INSERT INTO t (a, b) SELECT x, y FROM s").unwrap()
        else {
            panic!()
        };
        assert_eq!(columns, vec!["a", "b"]);
        assert!(matches!(source, InsertSource::Query(_)));
    }

    #[test]
    fn update_delete_drop() {
        assert!(matches!(
            parse_statement("UPDATE t SET a = 1, b = 2 WHERE c").unwrap(),
            Stmt::Update { sets, .. } if sets.len() == 2
        ));
        assert!(matches!(
            parse_statement("DELETE FROM t WHERE a = 1").unwrap(),
            Stmt::Delete { .. }
        ));
        assert!(matches!(
            parse_statement("DROP TABLE IF EXISTS t").unwrap(),
            Stmt::DropTable {
                if_exists: true,
                ..
            }
        ));
    }

    #[test]
    fn quoted_identifiers_preserve_case_and_symbols() {
        let e = parse_expr(r#"r."call?""#).unwrap();
        assert_eq!(e, Expr::qcol("r", "call?"));
        let Stmt::CreateFunction(cf) = parse_statement(
            r#"CREATE FUNCTION "walk*"(n int) RETURNS int AS $$ SELECT n $$ LANGUAGE SQL"#,
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(cf.name, "walk*");
    }

    #[test]
    fn casts_both_syntaxes() {
        assert_eq!(
            parse_expr("CAST(NULL AS int)").unwrap(),
            Expr::Cast {
                expr: Box::new(Expr::null()),
                ty: "int".into()
            }
        );
        assert_eq!(
            parse_expr("x::float8").unwrap(),
            Expr::Cast {
                expr: Box::new(Expr::col("x")),
                ty: "float8".into()
            }
        );
    }

    #[test]
    fn row_constructors() {
        let e = parse_expr("ROW(true, ROW(1, 2), NULL)").unwrap();
        let Expr::Row(items) = e else { panic!() };
        assert_eq!(items.len(), 3);
        assert!(matches!(items[1], Expr::Row(_)));
        // Parenthesized tuple sugar.
        assert!(matches!(parse_expr("(1, 2)").unwrap(), Expr::Row(_)));
    }

    #[test]
    fn in_list_and_in_subquery() {
        assert!(matches!(
            parse_expr("x IN (1, 2, 3)").unwrap(),
            Expr::InList { list, .. } if list.len() == 3
        ));
        assert!(matches!(
            parse_expr("x NOT IN (SELECT y FROM t)").unwrap(),
            Expr::InSubquery { negated: true, .. }
        ));
    }

    #[test]
    fn values_and_union_all() {
        let q = parse_query("SELECT 1 UNION ALL SELECT 2 UNION ALL SELECT 3").unwrap();
        // Left-assoc: ((1 U 2) U 3)
        let SetExpr::SetOp { left, all, .. } = &q.body else {
            panic!()
        };
        assert!(all);
        assert!(matches!(**left, SetExpr::SetOp { .. }));

        let q = parse_query("VALUES (1, 'x'), (2, 'y')").unwrap();
        assert!(matches!(q.body, SetExpr::Values(rows) if rows.len() == 2));
    }

    #[test]
    fn negative_literals_fold() {
        assert_eq!(parse_expr("-5").unwrap(), Expr::int(-5));
        assert_eq!(
            parse_expr("-2.5").unwrap(),
            Expr::Literal(Value::Float(-2.5))
        );
        // Folding must not break double negation of non-literals.
        assert!(matches!(parse_expr("-x").unwrap(), Expr::Unary { .. }));
    }

    #[test]
    fn count_star_and_count_over() {
        assert_eq!(parse_expr("COUNT(*)").unwrap(), Expr::CountStar);
        let e = parse_expr("COUNT(*) OVER (PARTITION BY a)").unwrap();
        assert!(matches!(e, Expr::WindowFunc { name, .. } if name == "count"));
    }

    #[test]
    fn is_null_postfix() {
        let e = parse_expr("a + 1 IS NOT NULL").unwrap();
        assert!(
            matches!(e, Expr::IsNull { negated: true, .. }),
            "IS binds looser than +"
        );
    }

    #[test]
    fn table_less_select_parses() {
        let q = parse_query("SELECT 1 + 2 AS three").unwrap();
        let SetExpr::Select(sel) = &q.body else {
            panic!()
        };
        assert!(sel.from.is_empty());
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_query("SELECT FROM").unwrap_err();
        assert!(matches!(err, Error::Parse { .. }), "{err}");
    }

    #[test]
    fn multi_statement_parsing() {
        let stmts = crate::parse_statements(
            "CREATE TABLE t (a int); INSERT INTO t VALUES (1); SELECT * FROM t;",
        )
        .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn from_comma_lateral() {
        let q = parse_query("SELECT * FROM run AS r, LATERAL (SELECT r.x + 1) AS s(y)").unwrap();
        let SetExpr::Select(sel) = &q.body else {
            panic!()
        };
        assert_eq!(sel.from.len(), 2);
        assert!(matches!(
            &sel.from[1],
            TableRef::Derived { lateral: true, .. }
        ));
    }
}
