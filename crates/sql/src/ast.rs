//! Abstract syntax for the SQL dialect.
//!
//! Coverage is driven by what the paper's compilation scheme emits and what
//! its workloads contain: scalar subqueries, `LEFT JOIN LATERAL` chains,
//! window functions with explicit frames (including `EXCLUDE CURRENT ROW`),
//! named windows with inheritance (`lt AS (leq ROWS ...)`), recursive CTEs,
//! and the `WITH ITERATE` variant. DDL/DML cover what the workloads need to
//! set up their tables.

use plaway_common::Value;

/// Binary operators, in SQL spelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Concat,
}

impl BinOp {
    pub fn sql(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Concat => "||",
        }
    }

    /// Is this a comparison returning boolean?
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
    Not,
}

/// Scalar expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value (`NULL`, numbers, strings, booleans).
    Literal(Value),
    /// Column reference `name` or `qualifier.name`.
    Column {
        qualifier: Option<String>,
        name: String,
    },
    /// A named parameter. Never produced by the parser; the planner turns
    /// unresolvable columns into parameters when a parameter scope is given
    /// (that is how PL/pgSQL variables appear inside embedded queries).
    Param(String),
    Unary {
        op: UnOp,
        expr: Box<Expr>,
    },
    Binary {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    /// `expr [NOT] IN (e1, e2, ...)`.
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    /// `expr [NOT] IN (SELECT ...)`.
    InSubquery {
        expr: Box<Expr>,
        query: Box<Query>,
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern` (SQL `%`/`_` wildcards).
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
    },
    /// `CASE [operand] WHEN .. THEN .. [ELSE ..] END`.
    Case {
        operand: Option<Box<Expr>>,
        branches: Vec<(Expr, Expr)>,
        else_: Option<Box<Expr>>,
    },
    /// Function call: scalar builtin, user-defined function, or aggregate —
    /// the planner decides from the name and context.
    Func {
        name: String,
        args: Vec<Expr>,
    },
    /// `COUNT(*)`.
    CountStar,
    /// `func(args) OVER window`.
    WindowFunc {
        name: String,
        args: Vec<Expr>,
        window: WindowRef,
    },
    /// Scalar subquery `(SELECT ...)` — the paper's embedded queries `Qi`.
    Subquery(Box<Query>),
    /// `EXISTS (SELECT ...)`.
    Exists(Box<Query>),
    /// `ROW(e1, ..., en)` record constructor.
    Row(Vec<Expr>),
    /// `CAST(expr AS type)` / `expr::type`. The type is kept as source text
    /// and resolved by the planner.
    Cast {
        expr: Box<Expr>,
        ty: String,
    },
}

impl Expr {
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.into(),
        }
    }

    pub fn qcol(qualifier: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column {
            qualifier: Some(qualifier.into()),
            name: name.into(),
        }
    }

    pub fn int(v: i64) -> Expr {
        Expr::Literal(Value::Int(v))
    }

    pub fn bool(v: bool) -> Expr {
        Expr::Literal(Value::Bool(v))
    }

    pub fn str(v: impl AsRef<str>) -> Expr {
        Expr::Literal(Value::text(v))
    }

    pub fn null() -> Expr {
        Expr::Literal(Value::Null)
    }

    pub fn binary(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    pub fn func(name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Func {
            name: name.into(),
            args,
        }
    }

    /// Fold a conjunction; `AND` of an empty list is `true`.
    pub fn and_all(mut exprs: Vec<Expr>) -> Expr {
        match exprs.len() {
            0 => Expr::bool(true),
            1 => exprs.pop().unwrap(),
            _ => {
                let mut it = exprs.into_iter();
                let first = it.next().unwrap();
                it.fold(first, |acc, e| Expr::binary(BinOp::And, acc, e))
            }
        }
    }
}

/// Reference to a window: inline spec or a named window from the `WINDOW`
/// clause.
#[derive(Debug, Clone, PartialEq)]
pub enum WindowRef {
    Named(String),
    Inline(WindowSpec),
}

/// A window specification. `base` implements named-window inheritance:
/// `lt AS (leq ROWS UNBOUNDED PRECEDING EXCLUDE CURRENT ROW)` copies
/// partition/order from `leq` and overrides the frame (paper Figure 3).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WindowSpec {
    pub base: Option<String>,
    pub partition_by: Vec<Expr>,
    pub order_by: Vec<OrderItem>,
    pub frame: Option<FrameSpec>,
}

/// One `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub desc: bool,
    /// `NULLS FIRST` / `NULLS LAST`; `None` means the PostgreSQL default
    /// (nulls last when ascending, nulls first when descending).
    pub nulls_first: Option<bool>,
}

impl OrderItem {
    pub fn asc(expr: Expr) -> Self {
        OrderItem {
            expr,
            desc: false,
            nulls_first: None,
        }
    }
}

/// Window frame.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameSpec {
    pub units: FrameUnits,
    pub start: FrameBound,
    pub end: FrameBound,
    /// `EXCLUDE CURRENT ROW` (the only exclusion the paper needs).
    pub exclude_current_row: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameUnits {
    Rows,
    /// `RANGE` with peer-row semantics (the SQL default frame).
    Range,
}

#[derive(Debug, Clone, PartialEq)]
pub enum FrameBound {
    UnboundedPreceding,
    Preceding(u64),
    CurrentRow,
    Following(u64),
    UnboundedFollowing,
}

/// A full query: optional WITH prefix, body, final ordering/limit.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub with: Option<With>,
    pub body: SetExpr,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<Expr>,
    pub offset: Option<Expr>,
}

impl Query {
    /// Wrap a bare SELECT into a Query with no WITH / ORDER BY / LIMIT.
    pub fn simple(select: Select) -> Query {
        Query {
            with: None,
            body: SetExpr::Select(Box::new(select)),
            order_by: Vec::new(),
            limit: None,
            offset: None,
        }
    }
}

/// `WITH [RECURSIVE | ITERATE | RETIRE] name (cols) AS (query), ...`.
///
/// `ITERATE` is the engine extension from Passing et al. (EDBT 2017) that §3
/// of the paper implements: like RECURSIVE but only the rows of the *last*
/// iteration survive, so tail recursion needs no working-table trace.
///
/// `RETIRE` is the batch-invocation variant: like ITERATE it keeps no
/// trace, but a working row that fails the recursive arm's filter is
/// *retired* into the CTE's result instead of being discarded. One fixpoint
/// can then drive many independent activations, each finishing on its own
/// iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct With {
    pub recursive: bool,
    pub iterate: bool,
    pub retire: bool,
    pub ctes: Vec<Cte>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Cte {
    pub name: String,
    pub columns: Vec<String>,
    pub query: Query,
}

/// Query body: plain select, set operation, or VALUES.
#[derive(Debug, Clone, PartialEq)]
pub enum SetExpr {
    Select(Box<Select>),
    SetOp {
        op: SetOp,
        all: bool,
        left: Box<SetExpr>,
        right: Box<SetExpr>,
    },
    Values(Vec<Vec<Expr>>),
    /// Parenthesized sub-query (keeps ORDER BY / LIMIT of the inner query).
    Query(Box<Query>),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    Union,
    Except,
    Intersect,
}

/// A SELECT block.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Select {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub where_: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    /// `WINDOW name AS (spec), ...`.
    pub windows: Vec<(String, WindowSpec)>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `expr [AS alias]`.
    Expr { expr: Expr, alias: Option<String> },
    /// `*`.
    Wildcard,
    /// `alias.*`.
    QualifiedWildcard(String),
}

/// Table alias with optional column aliases: `AS t(a, b, c)`.
#[derive(Debug, Clone, PartialEq)]
pub struct TableAlias {
    pub name: String,
    pub columns: Vec<String>,
}

impl TableAlias {
    pub fn named(name: impl Into<String>) -> Self {
        TableAlias {
            name: name.into(),
            columns: Vec::new(),
        }
    }
}

/// FROM-clause items.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// Base table or CTE reference.
    Table {
        name: String,
        alias: Option<TableAlias>,
    },
    /// Derived table `(SELECT ...) AS a(cols)`, possibly `LATERAL`.
    Derived {
        lateral: bool,
        query: Box<Query>,
        alias: TableAlias,
    },
    /// Join; `lateral` marks `JOIN LATERAL` (right side sees left columns).
    Join {
        left: Box<TableRef>,
        right: Box<TableRef>,
        kind: JoinKind,
        lateral: bool,
        on: Option<Expr>,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    Left,
    Cross,
}

/// Index access method named in `CREATE INDEX ... USING <method>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexMethod {
    /// Ordered index: point and range predicates.
    Btree,
    /// Hash index: equality predicates only.
    Hash,
}

impl IndexMethod {
    pub fn sql(&self) -> &'static str {
        match self {
            IndexMethod::Btree => "btree",
            IndexMethod::Hash => "hash",
        }
    }
}

/// Top-level statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    Query(Query),
    /// `EXPLAIN [ANALYZE] <statement>`: render (and under ANALYZE, execute
    /// and instrument) the inner statement's plan.
    Explain {
        analyze: bool,
        stmt: Box<Stmt>,
    },
    CreateTable {
        name: String,
        /// (column name, type name as written).
        columns: Vec<(String, String)>,
        if_not_exists: bool,
    },
    /// `CREATE INDEX name ON table [USING btree|hash] (column)`. Without a
    /// USING clause the engine picks its default method (btree).
    CreateIndex {
        name: String,
        table: String,
        column: String,
        using: Option<IndexMethod>,
    },
    CreateFunction(CreateFunction),
    Insert {
        table: String,
        columns: Vec<String>,
        source: InsertSource,
    },
    Update {
        table: String,
        sets: Vec<(String, Expr)>,
        where_: Option<Expr>,
    },
    Delete {
        table: String,
        where_: Option<Expr>,
    },
    DropTable {
        name: String,
        if_exists: bool,
    },
    DropFunction {
        name: String,
        if_exists: bool,
    },
}

#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    Values(Vec<Vec<Expr>>),
    Query(Box<Query>),
}

/// `CREATE FUNCTION`: the body stays raw text (as in PostgreSQL's pg_proc) —
/// SQL bodies are parsed by the engine at registration, PL/pgSQL bodies by
/// the `plaway-plsql` front end.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateFunction {
    pub or_replace: bool,
    pub name: String,
    /// (param name, type name as written).
    pub params: Vec<(String, String)>,
    pub returns: String,
    pub language: Language,
    pub body: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Language {
    Sql,
    PlPgSql,
}

// --------------------------------------------------------------------------
// Visitors / helpers used by the planner and the compiler.

impl Expr {
    /// Visit every sub-expression (pre-order), including those inside
    /// subqueries' SELECT items is NOT done here — subqueries are opaque to
    /// this walker (callers decide whether to descend into [`Query`]).
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Literal(_) | Expr::Column { .. } | Expr::Param(_) | Expr::CountStar => {}
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => {
                expr.walk(f)
            }
            Expr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.walk(f);
                low.walk(f);
                high.walk(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            Expr::InSubquery { expr, .. } => expr.walk(f),
            Expr::Like { expr, pattern, .. } => {
                expr.walk(f);
                pattern.walk(f);
            }
            Expr::Case {
                operand,
                branches,
                else_,
            } => {
                if let Some(o) = operand {
                    o.walk(f);
                }
                for (w, t) in branches {
                    w.walk(f);
                    t.walk(f);
                }
                if let Some(e) = else_ {
                    e.walk(f);
                }
            }
            Expr::Func { args, .. } | Expr::WindowFunc { args, .. } | Expr::Row(args) => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Subquery(_) | Expr::Exists(_) => {}
        }
    }

    /// Apply `f` to every sub-expression bottom-up, rebuilding the tree.
    /// Subqueries are passed through `fq` so callers can rewrite them too.
    pub fn rewrite(
        self,
        f: &mut impl FnMut(Expr) -> Expr,
        fq: &mut impl FnMut(Query) -> Query,
    ) -> Expr {
        let e = match self {
            Expr::Literal(_) | Expr::Column { .. } | Expr::Param(_) | Expr::CountStar => self,
            Expr::Unary { op, expr } => Expr::Unary {
                op,
                expr: Box::new(expr.rewrite(f, fq)),
            },
            Expr::Binary { op, left, right } => Expr::Binary {
                op,
                left: Box::new(left.rewrite(f, fq)),
                right: Box::new(right.rewrite(f, fq)),
            },
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(expr.rewrite(f, fq)),
                negated,
            },
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => Expr::Between {
                expr: Box::new(expr.rewrite(f, fq)),
                low: Box::new(low.rewrite(f, fq)),
                high: Box::new(high.rewrite(f, fq)),
                negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(expr.rewrite(f, fq)),
                list: list.into_iter().map(|e| e.rewrite(f, fq)).collect(),
                negated,
            },
            Expr::InSubquery {
                expr,
                query,
                negated,
            } => Expr::InSubquery {
                expr: Box::new(expr.rewrite(f, fq)),
                query: Box::new(fq(*query)),
                negated,
            },
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Expr::Like {
                expr: Box::new(expr.rewrite(f, fq)),
                pattern: Box::new(pattern.rewrite(f, fq)),
                negated,
            },
            Expr::Case {
                operand,
                branches,
                else_,
            } => Expr::Case {
                operand: operand.map(|o| Box::new(o.rewrite(f, fq))),
                branches: branches
                    .into_iter()
                    .map(|(w, t)| (w.rewrite(f, fq), t.rewrite(f, fq)))
                    .collect(),
                else_: else_.map(|e| Box::new(e.rewrite(f, fq))),
            },
            Expr::Func { name, args } => Expr::Func {
                name,
                args: args.into_iter().map(|a| a.rewrite(f, fq)).collect(),
            },
            Expr::WindowFunc { name, args, window } => Expr::WindowFunc {
                name,
                args: args.into_iter().map(|a| a.rewrite(f, fq)).collect(),
                window,
            },
            Expr::Row(items) => Expr::Row(items.into_iter().map(|a| a.rewrite(f, fq)).collect()),
            Expr::Subquery(q) => Expr::Subquery(Box::new(fq(*q))),
            Expr::Exists(q) => Expr::Exists(Box::new(fq(*q))),
            Expr::Cast { expr, ty } => Expr::Cast {
                expr: Box::new(expr.rewrite(f, fq)),
                ty,
            },
        };
        f(e)
    }

    /// Does the expression contain a subquery or `EXISTS`/`IN (SELECT)`?
    /// Such expressions cannot take the PL/pgSQL "simple expression" fast
    /// path.
    pub fn has_subquery(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(
                e,
                Expr::Subquery(_) | Expr::Exists(_) | Expr::InSubquery { .. }
            ) {
                found = true;
            }
        });
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_all_folds() {
        assert_eq!(Expr::and_all(vec![]), Expr::bool(true));
        assert_eq!(Expr::and_all(vec![Expr::col("a")]), Expr::col("a"));
        let e = Expr::and_all(vec![Expr::col("a"), Expr::col("b"), Expr::col("c")]);
        // ((a AND b) AND c)
        match e {
            Expr::Binary {
                op: BinOp::And,
                left,
                right,
            } => {
                assert_eq!(*right, Expr::col("c"));
                assert!(matches!(*left, Expr::Binary { op: BinOp::And, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn walk_visits_all_nodes() {
        let e = Expr::binary(
            BinOp::Add,
            Expr::func("abs", vec![Expr::col("x")]),
            Expr::int(1),
        );
        let mut n = 0;
        e.walk(&mut |_| n += 1);
        assert_eq!(n, 4); // binary, func, col, literal
    }

    #[test]
    fn has_subquery_detects_nested() {
        let q = Query::simple(Select::default());
        let e = Expr::binary(
            BinOp::Add,
            Expr::int(1),
            Expr::Subquery(Box::new(q.clone())),
        );
        assert!(e.has_subquery());
        assert!(!Expr::int(1).has_subquery());
        let in_sub = Expr::InSubquery {
            expr: Box::new(Expr::col("x")),
            query: Box::new(q),
            negated: false,
        };
        assert!(in_sub.has_subquery());
    }

    #[test]
    fn rewrite_replaces_columns() {
        let e = Expr::binary(BinOp::Add, Expr::col("x"), Expr::col("y"));
        let out = e.rewrite(
            &mut |e| match e {
                Expr::Column { name, .. } if name == "x" => Expr::int(9),
                other => other,
            },
            &mut |q| q,
        );
        assert_eq!(out, Expr::binary(BinOp::Add, Expr::int(9), Expr::col("y")));
    }
}
