//! PL/pgSQL function compilation (name → slot resolution, expression
//! classification).
//!
//! Mirrors what PostgreSQL's plpgsql does on first call: variables become
//! numbered datums, every expression is classified as either
//!
//! * **simple** — no table access, no subquery, no UDF call: evaluated
//!   directly by the expression evaluator (PostgreSQL's
//!   `exec_eval_simple_expr` fast path that skips ExecutorStart/End), or
//! * **query** — wrapped as `SELECT (expr)` and driven through the full
//!   prepared-statement lifecycle. These are the `f→Qi` context switches
//!   the paper measures.

use std::collections::HashMap;

use plaway_common::{Error, Result, Type};
use plaway_engine::{ExprIr, ParamScope, Session};
use plaway_plsql::ast::{PlFunction, PlStmt, RaiseLevel, VarDecl};
use plaway_sql::ast::Expr;

/// A compiled expression, classified by evaluation regime.
#[derive(Debug, Clone)]
pub enum CExpr {
    /// Fast path: direct evaluation, no executor lifecycle.
    Simple(ExprIr),
    /// Full lifecycle: prepared `SELECT (expr)` with the variable scope.
    Query { sql: String, scope: ParamScope },
}

impl CExpr {
    pub fn is_query(&self) -> bool {
        matches!(self, CExpr::Query { .. })
    }
}

/// Compiled statements with slot-resolved variables.
#[derive(Debug, Clone)]
pub enum CStmt {
    Assign {
        slot: usize,
        ty: Type,
        expr: CExpr,
    },
    If {
        branches: Vec<(CExpr, Vec<CStmt>)>,
        else_: Vec<CStmt>,
    },
    CaseStmt {
        operand: Option<CExpr>,
        branches: Vec<(Vec<CExpr>, Vec<CStmt>)>,
        else_: Option<Vec<CStmt>>,
    },
    Loop {
        label: Option<String>,
        body: Vec<CStmt>,
    },
    While {
        label: Option<String>,
        cond: CExpr,
        body: Vec<CStmt>,
    },
    ForRange {
        label: Option<String>,
        slot: usize,
        from: CExpr,
        to: CExpr,
        by: Option<CExpr>,
        reverse: bool,
        body: Vec<CStmt>,
    },
    Exit {
        label: Option<String>,
        when: Option<CExpr>,
    },
    Continue {
        label: Option<String>,
        when: Option<CExpr>,
    },
    Return(Option<CExpr>),
    Null,
    Raise {
        level: RaiseLevel,
        format: String,
        args: Vec<CExpr>,
        /// Condition name for `RAISE <condition>;`; the format-string form
        /// raises `raise_exception`.
        condition: Option<String>,
    },
    Perform(CExpr),
    /// `FOR rec IN <query> LOOP ...` — the query runs once (cursor
    /// semantics); each row binds the record slot plus one slot per output
    /// column.
    ForQuery {
        label: Option<String>,
        rec_slot: usize,
        field_slots: Vec<usize>,
        sql: String,
        scope: ParamScope,
        body: Vec<CStmt>,
    },
    /// Nested block: declarations re-initialize at every entry; handler arms
    /// `(conditions, body)` catch raised conditions from the body.
    Block {
        decl_inits: Vec<(usize, Type, Option<CExpr>)>,
        body: Vec<CStmt>,
        handlers: Vec<(Vec<String>, Vec<CStmt>)>,
    },
}

/// A fully compiled PL/pgSQL function.
#[derive(Debug, Clone)]
pub struct PlCompiled {
    pub name: String,
    pub nparams: usize,
    pub returns: Type,
    /// Type of each slot (parameters first, then declarations, then loop
    /// variables in encounter order).
    pub slot_types: Vec<Type>,
    /// Declaration initializers, in order: `(slot, init)`.
    pub decl_inits: Vec<(usize, Option<CExpr>)>,
    pub body: Vec<CStmt>,
    /// How many expressions took the query (full lifecycle) path — `walk`
    /// has 3, `fibonacci` 0.
    pub query_expr_count: usize,
}

struct Compiler<'s> {
    session: &'s mut Session,
    /// Slot table: (source name, type). Slot index = position.
    slots: Vec<(String, Type)>,
    /// Scope stack of name -> slot bindings.
    scopes: Vec<HashMap<String, usize>>,
    query_expr_count: usize,
}

/// Compile a parsed function against the session's catalog.
pub fn compile(session: &mut Session, f: &PlFunction) -> Result<PlCompiled> {
    let mut c = Compiler {
        session,
        slots: Vec::new(),
        scopes: vec![HashMap::new()],
        query_expr_count: 0,
    };
    for (name, ty) in &f.params {
        c.declare(name, ty.clone())?;
    }
    let mut decl_inits = Vec::with_capacity(f.decls.len());
    for VarDecl { name, ty, init } in &f.decls {
        // Initializers may reference parameters and earlier declarations,
        // so compile before declaring the variable itself (PostgreSQL's
        // behaviour: `x int := x` refers to an outer x, or errors).
        let compiled_init = init.as_ref().map(|e| c.compile_expr(e)).transpose()?;
        let slot = c.declare(name, ty.clone())?;
        decl_inits.push((slot, compiled_init));
    }
    let body = c.compile_stmts(&f.body)?;
    Ok(PlCompiled {
        name: f.name.clone(),
        nparams: f.params.len(),
        returns: f.returns.clone(),
        slot_types: c.slots.iter().map(|(_, t)| t.clone()).collect(),
        decl_inits,
        body,
        query_expr_count: c.query_expr_count,
    })
}

impl<'s> Compiler<'s> {
    fn declare(&mut self, name: &str, ty: Type) -> Result<usize> {
        let slot = self.slots.len();
        self.slots.push((name.to_string(), ty));
        let scope = self.scopes.last_mut().expect("scope stack never empty");
        if scope.insert(name.to_string(), slot).is_some() {
            return Err(Error::compile(format!(
                "variable {name:?} declared twice in the same scope"
            )));
        }
        Ok(slot)
    }

    fn lookup(&self, name: &str) -> Option<usize> {
        self.scopes
            .iter()
            .rev()
            .find_map(|scope| scope.get(name).copied())
    }

    /// Build the parameter scope for expression compilation: position i maps
    /// to slot i. Shadowed slots get placeholder names that can never be
    /// referenced from SQL text, so name lookup always finds the innermost
    /// binding.
    fn param_scope(&self) -> ParamScope {
        let mut names: Vec<String> = (0..self.slots.len())
            .map(|i| format!("\u{2}shadowed{i}"))
            .collect();
        for scope in &self.scopes {
            for (name, &slot) in scope {
                names[slot] = name.clone();
            }
        }
        // Inner scopes win: apply again in stack order (later = inner).
        for scope in self.scopes.iter() {
            for (name, &slot) in scope {
                // Clear any outer slot currently claiming this name.
                for (i, n) in names.iter_mut().enumerate() {
                    if i != slot && n == name {
                        *n = format!("\u{2}shadowed{i}");
                    }
                }
                names[slot] = name.clone();
            }
        }
        ParamScope::new(names)
    }

    fn compile_expr(&mut self, e: &Expr) -> Result<CExpr> {
        let scope = self.param_scope();
        let ir = self.session.compile_expr(e, &scope)?;
        if needs_full_executor(&ir) {
            self.query_expr_count += 1;
            Ok(CExpr::Query {
                sql: format!("SELECT ({e})"),
                scope,
            })
        } else {
            Ok(CExpr::Simple(ir))
        }
    }

    fn compile_stmts(&mut self, stmts: &[PlStmt]) -> Result<Vec<CStmt>> {
        stmts.iter().map(|s| self.compile_stmt(s)).collect()
    }

    fn compile_stmt(&mut self, s: &PlStmt) -> Result<CStmt> {
        Ok(match s {
            PlStmt::Assign { var, expr } => {
                let slot = self.lookup(var).ok_or_else(|| {
                    Error::compile(format!("assignment to undeclared variable {var:?}"))
                })?;
                let ty = self.slots[slot].1.clone();
                CStmt::Assign {
                    slot,
                    ty,
                    expr: self.compile_expr(expr)?,
                }
            }
            PlStmt::If { branches, else_ } => CStmt::If {
                branches: branches
                    .iter()
                    .map(|(c, body)| Ok((self.compile_expr(c)?, self.compile_stmts(body)?)))
                    .collect::<Result<_>>()?,
                else_: self.compile_stmts(else_)?,
            },
            PlStmt::CaseStmt {
                operand,
                branches,
                else_,
            } => CStmt::CaseStmt {
                operand: operand.as_ref().map(|e| self.compile_expr(e)).transpose()?,
                branches: branches
                    .iter()
                    .map(|(vals, body)| {
                        let cvals = vals
                            .iter()
                            .map(|v| self.compile_expr(v))
                            .collect::<Result<Vec<_>>>()?;
                        Ok((cvals, self.compile_stmts(body)?))
                    })
                    .collect::<Result<_>>()?,
                else_: else_
                    .as_ref()
                    .map(|body| self.compile_stmts(body))
                    .transpose()?,
            },
            PlStmt::Loop { label, body } => CStmt::Loop {
                label: label.clone(),
                body: self.compile_stmts(body)?,
            },
            PlStmt::While { label, cond, body } => CStmt::While {
                label: label.clone(),
                cond: self.compile_expr(cond)?,
                body: self.compile_stmts(body)?,
            },
            PlStmt::ForRange {
                label,
                var,
                from,
                to,
                by,
                reverse,
                body,
            } => {
                // Bounds are evaluated in the enclosing scope, the loop
                // variable lives in a fresh block scope.
                let from = self.compile_expr(from)?;
                let to = self.compile_expr(to)?;
                let by = by.as_ref().map(|e| self.compile_expr(e)).transpose()?;
                self.scopes.push(HashMap::new());
                let slot = self.declare(var, Type::Int)?;
                let body = self.compile_stmts(body)?;
                self.scopes.pop();
                CStmt::ForRange {
                    label: label.clone(),
                    slot,
                    from,
                    to,
                    by,
                    reverse: *reverse,
                    body,
                }
            }
            PlStmt::Exit { label, when } => CStmt::Exit {
                label: label.clone(),
                when: when.as_ref().map(|e| self.compile_expr(e)).transpose()?,
            },
            PlStmt::Continue { label, when } => CStmt::Continue {
                label: label.clone(),
                when: when.as_ref().map(|e| self.compile_expr(e)).transpose()?,
            },
            PlStmt::Return { expr } => {
                CStmt::Return(expr.as_ref().map(|e| self.compile_expr(e)).transpose()?)
            }
            PlStmt::Null => CStmt::Null,
            PlStmt::Raise {
                level,
                format,
                args,
                condition,
            } => CStmt::Raise {
                level: *level,
                format: format.clone(),
                args: args
                    .iter()
                    .map(|a| self.compile_expr(a))
                    .collect::<Result<_>>()?,
                condition: condition.clone(),
            },
            PlStmt::Perform { expr } => CStmt::Perform(self.compile_expr(expr)?),
            PlStmt::ForQuery {
                label,
                var,
                query,
                body,
            } => {
                // The query sees the enclosing scope (loop-entry values);
                // the record variable and its fields live in a fresh block
                // scope under names no source text can collide with.
                let scope = self.param_scope();
                let sql = query.to_string();
                let cols = plaway_engine::query_output_columns(query, &self.session.catalog)?;
                self.scopes.push(HashMap::new());
                let rec_slot = self.declare(&record_slot_name(var, None), Type::Unknown)?;
                let mut field_slots = Vec::with_capacity(cols.len());
                for c in &cols {
                    field_slots.push(self.declare(&record_slot_name(var, Some(c)), Type::Unknown)?);
                }
                let mut unknown: Vec<String> = Vec::new();
                let body = plaway_plsql::record::rewrite_stmts(body.clone(), var, &mut |r| {
                    use plaway_plsql::record::RecordRef;
                    match r {
                        RecordRef::Field(f) => {
                            if !cols.iter().any(|c| c == f) {
                                unknown.push(f.to_string());
                            }
                            Expr::col(record_slot_name(var, Some(f)))
                        }
                        RecordRef::Whole => Expr::col(record_slot_name(var, None)),
                    }
                });
                if let Some(f) = unknown.first() {
                    return Err(Error::compile(format!(
                        "record variable {var:?} has no field {f:?}; the loop query \
                         provides columns {cols:?}"
                    )));
                }
                let body = self.compile_stmts(&body)?;
                self.scopes.pop();
                CStmt::ForQuery {
                    label: label.clone(),
                    rec_slot,
                    field_slots,
                    sql,
                    scope,
                    body,
                }
            }
            PlStmt::Block {
                decls,
                body,
                handlers,
            } => {
                self.scopes.push(HashMap::new());
                let mut decl_inits = Vec::with_capacity(decls.len());
                for VarDecl { name, ty, init } in decls {
                    let compiled_init = init.as_ref().map(|e| self.compile_expr(e)).transpose()?;
                    let slot = self.declare(name, ty.clone())?;
                    decl_inits.push((slot, ty.clone(), compiled_init));
                }
                let body = self.compile_stmts(body)?;
                // Handler bodies see the block's variables (PostgreSQL
                // keeps the block scope alive for its handlers).
                let handlers = handlers
                    .iter()
                    .map(|h| Ok((h.conditions.clone(), self.compile_stmts(&h.body)?)))
                    .collect::<Result<_>>()?;
                self.scopes.pop();
                CStmt::Block {
                    decl_inits,
                    body,
                    handlers,
                }
            }
        })
    }
}

/// Internal slot name for a FOR-over-query record (`#` cannot appear in a
/// lexed identifier, so these names never collide with source variables;
/// the SQL printer quotes them, and quoted identifiers re-lex verbatim).
fn record_slot_name(var: &str, field: Option<&str>) -> String {
    match field {
        Some(f) => format!("{var}#{f}"),
        None => format!("{var}#"),
    }
}

/// Does the compiled expression require the full executor lifecycle?
/// (Anything touching tables, subqueries or UDFs. `random()` stays simple —
/// PostgreSQL's fast path handles stable-free functions the same way, which
/// is why Table 1 shows zero Start/End cost for `fibonacci`.)
fn needs_full_executor(ir: &ExprIr) -> bool {
    match ir {
        ExprIr::Subplan(_)
        | ExprIr::Exists { .. }
        | ExprIr::InPlan { .. }
        | ExprIr::UdfCall { .. }
        // Snapshot expressions are the compiled trampoline's cursor
        // machinery; the interpreter's own cursor never emits them, but a
        // hand-written expression could — run it with the full executor.
        | ExprIr::Materialize { .. }
        | ExprIr::SnapshotFn { .. } => true,
        ExprIr::Const(_) | ExprIr::Slot { .. } | ExprIr::Param(_) => false,
        ExprIr::Neg(e) | ExprIr::Not(e) => needs_full_executor(e),
        ExprIr::Binary { left, right, .. } => {
            needs_full_executor(left) || needs_full_executor(right)
        }
        ExprIr::IsNull { expr, .. } => needs_full_executor(expr),
        ExprIr::Between {
            expr, low, high, ..
        } => needs_full_executor(expr) || needs_full_executor(low) || needs_full_executor(high),
        ExprIr::Case {
            operand,
            branches,
            else_,
        } => {
            operand.as_deref().is_some_and(needs_full_executor)
                || branches
                    .iter()
                    .any(|(w, t)| needs_full_executor(w) || needs_full_executor(t))
                || else_.as_deref().is_some_and(needs_full_executor)
        }
        ExprIr::Coalesce(args) => args.iter().any(needs_full_executor),
        ExprIr::Scalar { args, .. } => args.iter().any(needs_full_executor),
        ExprIr::InList { expr, list, .. } => {
            needs_full_executor(expr) || list.iter().any(needs_full_executor)
        }
        ExprIr::Like { expr, pattern, .. } => {
            needs_full_executor(expr) || needs_full_executor(pattern)
        }
        ExprIr::Row(items) => items.iter().any(needs_full_executor),
        ExprIr::Cast { expr, .. } => needs_full_executor(expr),
        // Pre-compiled programs (the engine's prepared-plan path; the
        // interpreter's own expressions are never pre-compiled).
        ExprIr::Vm(prog) => prog.has_tree_fallback(),
    }
}
