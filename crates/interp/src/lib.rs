//! `plaway-interp` — the statement-by-statement PL/pgSQL interpreter.
//!
//! This is the **baseline the paper compiles away**: functions execute one
//! statement at a time; every expression that touches a table runs through
//! the engine's full prepared-statement lifecycle (plan-cache lookup,
//! `ExecutorStart`, `ExecutorRun`, `ExecutorEnd`) — the `f→Qi` context
//! switches of §1. Simple expressions use a fast path that skips Start/End,
//! mirroring PostgreSQL's `exec_eval_simple_expr` (that is why `fibonacci`
//! in Table 1 shows no Start/End cost).
//!
//! Profiling: the session's [`plaway_engine::Profiler`] accumulates the four
//! Table 1 buckets. The interpreter attributes its own dispatch overhead to
//! `Interp` by subtracting the executor phases from wall-clock time.

pub mod compile;

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use plaway_common::{Error, Result, Type, Value};
use plaway_engine::{Phase, Session};
use plaway_plsql::ast::{PlFunction, RaiseLevel};
use plaway_sql::ast::Language;

use compile::{CExpr, CStmt, PlCompiled};

/// Control flow outcome of statement execution.
#[derive(Debug, Clone)]
enum Flow {
    Normal,
    Return(Value),
    Exit(Option<String>),
    Continue(Option<String>),
}

/// The PL/pgSQL interpreter. Holds a per-function compilation cache (like
/// PostgreSQL's plpgsql function cache) and collects `RAISE` output.
pub struct Interpreter {
    compiled: HashMap<String, (u64, Arc<PlCompiled>)>,
    /// Messages produced by `RAISE NOTICE` etc. (drained by the caller).
    pub notices: Vec<String>,
    /// Statement budget per call — guards against runaway loops in tests.
    pub max_statements: u64,
}

impl Default for Interpreter {
    fn default() -> Self {
        Interpreter {
            compiled: HashMap::new(),
            notices: Vec::new(),
            max_statements: u64::MAX,
        }
    }
}

impl Interpreter {
    pub fn new() -> Self {
        Interpreter::default()
    }

    /// Call a PL/pgSQL function registered in the session's catalog.
    pub fn call(&mut self, session: &mut Session, name: &str, args: &[Value]) -> Result<Value> {
        let compiled = self.compiled_for(session, name)?;
        self.run_compiled(session, &compiled, args)
    }

    /// Compile (with caching) a catalog function.
    pub fn compiled_for(&mut self, session: &mut Session, name: &str) -> Result<Arc<PlCompiled>> {
        if let Some((version, c)) = self.compiled.get(name) {
            if *version == session.catalog.version {
                return Ok(Arc::clone(c));
            }
        }
        let def = session
            .catalog
            .function(name)
            .ok_or_else(|| Error::plan(format!("function {name:?} does not exist")))?
            .clone();
        if def.language != Language::PlPgSql {
            return Err(Error::plan(format!(
                "function {name:?} is not LANGUAGE plpgsql"
            )));
        }
        let cf = plaway_sql::ast::CreateFunction {
            or_replace: true,
            name: def.name.clone(),
            params: def
                .params
                .iter()
                .map(|(n, t)| (n.clone(), t.sql_name()))
                .collect(),
            returns: def.returns.sql_name(),
            language: Language::PlPgSql,
            body: def.body.clone(),
        };
        let parsed = plaway_plsql::parse_function(&cf)?;
        let compiled = Arc::new(compile::compile(session, &parsed)?);
        self.compiled.insert(
            name.to_string(),
            (session.catalog.version, Arc::clone(&compiled)),
        );
        Ok(compiled)
    }

    /// Call an already-parsed function (bypasses the catalog).
    pub fn call_parsed(
        &mut self,
        session: &mut Session,
        f: &PlFunction,
        args: &[Value],
    ) -> Result<Value> {
        let compiled = Arc::new(compile::compile(session, f)?);
        self.run_compiled(session, &compiled, args)
    }

    /// Execute a compiled function. Wall-clock time not spent in executor
    /// phases is attributed to `Interp`.
    pub fn run_compiled(
        &mut self,
        session: &mut Session,
        compiled: &PlCompiled,
        args: &[Value],
    ) -> Result<Value> {
        if args.len() != compiled.nparams {
            return Err(Error::exec(format!(
                "function {} expects {} arguments, got {}",
                compiled.name,
                compiled.nparams,
                args.len()
            )));
        }
        let t0 = Instant::now();
        let before = session.profiler;

        let mut cx = CallCtx {
            session,
            notices: &mut self.notices,
            slots: Vec::with_capacity(compiled.slot_types.len()),
            budget: self.max_statements,
        };
        // Parameters first, everything else NULL until initialized.
        cx.slots.extend(args.iter().cloned());
        cx.slots.resize(compiled.slot_types.len(), Value::Null);
        for (slot, init) in &compiled.decl_inits {
            let v = match init {
                Some(e) => cx.eval(e)?,
                None => Value::Null,
            };
            cx.assign(*slot, &compiled.slot_types[*slot], v)?;
        }

        let result = match cx.exec_stmts(&compiled.body)? {
            Flow::Return(v) => v,
            Flow::Normal => {
                // Raised (not a plain Exec error): the compiled trampoline
                // reports the identical condition via raise_error.
                return Err(Error::raised(
                    plaway_plsql::ast::NO_RETURN_CONDITION,
                    format!(
                        "control reached end of function {:?} without RETURN",
                        compiled.name
                    ),
                ));
            }
            Flow::Exit(_) | Flow::Continue(_) => {
                return Err(Error::exec(
                    "EXIT/CONTINUE outside of any loop (compiler bug)",
                ))
            }
        };
        let result = if compiled.returns.admits(&result) {
            result
        } else {
            result.cast(&compiled.returns)?
        };

        // Interp = wall time minus whatever the executor phases consumed
        // during this call (including nested interpretation, already booked).
        let wall = t0.elapsed().as_nanos();
        let after = session.profiler;
        let executor = (after.exec_start_ns - before.exec_start_ns)
            + (after.exec_run_ns - before.exec_run_ns)
            + (after.exec_end_ns - before.exec_end_ns)
            + (after.interp_ns - before.interp_ns);
        session.profiler.add(
            Phase::Interp,
            std::time::Duration::from_nanos(wall.saturating_sub(executor) as u64),
        );
        Ok(result)
    }
}

/// Per-call execution context.
struct CallCtx<'a> {
    session: &'a mut Session,
    notices: &'a mut Vec<String>,
    slots: Vec<Value>,
    budget: u64,
}

impl<'a> CallCtx<'a> {
    fn eval(&mut self, e: &CExpr) -> Result<Value> {
        match e {
            CExpr::Simple(ir) => {
                // Fast path: direct evaluation; time booked as Exec·Run
                // (PostgreSQL evaluates simple expressions through the
                // executor's expression machinery without Start/End).
                let t0 = Instant::now();
                let v = self.session.eval_expr(ir, &self.slots);
                self.session.profiler.add(Phase::ExecRun, t0.elapsed());
                v
            }
            CExpr::Query { sql, scope } => {
                // Full lifecycle: plan-cache lookup + Start/Run/End.
                let plan = self.session.prepare(sql, scope)?;
                let result = self.session.execute_prepared(&plan, self.slots.clone())?;
                match result.rows.len() {
                    0 => Ok(Value::Null),
                    1 => {
                        let row = &result.rows[0];
                        if row.len() != 1 {
                            return Err(Error::exec("embedded query must return a single column"));
                        }
                        Ok(row[0].clone())
                    }
                    n => Err(Error::exec(format!(
                        "embedded query returned {n} rows (expected at most one)"
                    ))),
                }
            }
        }
    }

    fn eval_bool(&mut self, e: &CExpr) -> Result<bool> {
        Ok(self.eval(e)?.is_true())
    }

    fn assign(&mut self, slot: usize, ty: &Type, v: Value) -> Result<()> {
        self.slots[slot] = if ty.admits(&v) { v } else { v.cast(ty)? };
        Ok(())
    }

    fn charge(&mut self) -> Result<()> {
        if self.budget == 0 {
            return Err(Error::exec(
                "statement budget exhausted (possible infinite loop)",
            ));
        }
        self.budget -= 1;
        Ok(())
    }

    fn exec_stmts(&mut self, stmts: &[CStmt]) -> Result<Flow> {
        for s in stmts {
            match self.exec_stmt(s)? {
                Flow::Normal => continue,
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, s: &CStmt) -> Result<Flow> {
        self.charge()?;
        match s {
            CStmt::Assign { slot, ty, expr } => {
                let v = self.eval(expr)?;
                self.assign(*slot, ty, v)?;
                Ok(Flow::Normal)
            }
            CStmt::If { branches, else_ } => {
                for (cond, body) in branches {
                    if self.eval_bool(cond)? {
                        return self.exec_stmts(body);
                    }
                }
                self.exec_stmts(else_)
            }
            CStmt::CaseStmt {
                operand,
                branches,
                else_,
            } => {
                let op_val = operand.as_ref().map(|e| self.eval(e)).transpose()?;
                for (vals, body) in branches {
                    for v in vals {
                        let matched = match &op_val {
                            Some(op) => {
                                let w = self.eval(v)?;
                                op.sql_eq(&w)? == Some(true)
                            }
                            None => self.eval_bool(v)?,
                        };
                        if matched {
                            return self.exec_stmts(body);
                        }
                    }
                }
                match else_ {
                    Some(body) => self.exec_stmts(body),
                    // PostgreSQL raises case_not_found when nothing matches;
                    // raised conditions are catchable by EXCEPTION handlers.
                    None => Err(Error::raised(
                        plaway_plsql::ast::CASE_NOT_FOUND_CONDITION,
                        "case not found in CASE statement",
                    )),
                }
            }
            CStmt::Loop { label, body } => loop {
                self.charge()?;
                match self.loop_body_step(label.as_deref(), body)? {
                    LoopStep::Continue => {}
                    LoopStep::Break => return Ok(Flow::Normal),
                    LoopStep::Propagate(flow) => return Ok(flow),
                }
            },
            CStmt::While { label, cond, body } => loop {
                self.charge()?;
                if !self.eval_bool(cond)? {
                    return Ok(Flow::Normal);
                }
                match self.loop_body_step(label.as_deref(), body)? {
                    LoopStep::Continue => {}
                    LoopStep::Break => return Ok(Flow::Normal),
                    LoopStep::Propagate(flow) => return Ok(flow),
                }
            },
            CStmt::ForRange {
                label,
                slot,
                from,
                to,
                by,
                reverse,
                body,
            } => {
                let from_v = self.eval(from)?;
                let to_v = self.eval(to)?;
                if from_v.is_null() || to_v.is_null() {
                    return Err(Error::exec("lower/upper bound of FOR loop cannot be null"));
                }
                let mut i = from_v.as_int()?;
                let to_i = to_v.as_int()?;
                let step = match by {
                    Some(e) => {
                        let v = self.eval(e)?.as_int()?;
                        if v <= 0 {
                            return Err(Error::exec("BY value of FOR loop must be positive"));
                        }
                        v
                    }
                    None => 1,
                };
                loop {
                    self.charge()?;
                    let done = if *reverse { i < to_i } else { i > to_i };
                    if done {
                        return Ok(Flow::Normal);
                    }
                    self.slots[*slot] = Value::Int(i);
                    match self.loop_body_step(label.as_deref(), body)? {
                        LoopStep::Continue => {}
                        LoopStep::Break => return Ok(Flow::Normal),
                        LoopStep::Propagate(flow) => return Ok(flow),
                    }
                    i = if *reverse { i - step } else { i + step };
                }
            }
            CStmt::Exit { label, when } => {
                let fire = match when {
                    Some(c) => self.eval_bool(c)?,
                    None => true,
                };
                Ok(if fire {
                    Flow::Exit(label.clone())
                } else {
                    Flow::Normal
                })
            }
            CStmt::Continue { label, when } => {
                let fire = match when {
                    Some(c) => self.eval_bool(c)?,
                    None => true,
                };
                Ok(if fire {
                    Flow::Continue(label.clone())
                } else {
                    Flow::Normal
                })
            }
            CStmt::Return(expr) => {
                let v = match expr {
                    Some(e) => self.eval(e)?,
                    None => Value::Null,
                };
                Ok(Flow::Return(v))
            }
            CStmt::Null => Ok(Flow::Normal),
            CStmt::Raise {
                level,
                format,
                args,
                condition,
            } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a)?);
                }
                let msg = format_raise(format, &vals);
                if *level == RaiseLevel::Exception {
                    let condition = condition
                        .as_deref()
                        .unwrap_or(plaway_plsql::ast::RAISE_EXCEPTION_CONDITION);
                    return Err(Error::raised(condition, msg));
                }
                self.notices.push(msg);
                Ok(Flow::Normal)
            }
            CStmt::Perform(e) => {
                self.eval(e)?;
                Ok(Flow::Normal)
            }
            CStmt::ForQuery {
                label,
                rec_slot,
                field_slots,
                sql,
                scope,
                body,
            } => {
                // Cursor semantics: the query runs exactly once, at loop
                // entry, through the full prepared-statement lifecycle.
                let plan = self.session.prepare(sql, scope)?;
                let result = self.session.execute_prepared(&plan, self.slots.clone())?;
                for row in &result.rows {
                    self.charge()?;
                    if row.len() != field_slots.len() {
                        return Err(Error::exec(format!(
                            "FOR-over-query row has {} columns, expected {}",
                            row.len(),
                            field_slots.len()
                        )));
                    }
                    self.slots[*rec_slot] = Value::record(row.clone());
                    for (k, fs) in field_slots.iter().enumerate() {
                        self.slots[*fs] = row[k].clone();
                    }
                    match self.loop_body_step(label.as_deref(), body)? {
                        LoopStep::Continue => {}
                        LoopStep::Break => return Ok(Flow::Normal),
                        LoopStep::Propagate(flow) => return Ok(flow),
                    }
                }
                Ok(Flow::Normal)
            }
            CStmt::Block {
                decl_inits,
                body,
                handlers,
            } => {
                // Declarations re-initialize at every entry, outside handler
                // protection (as in PostgreSQL, where an error in the
                // declarations is not caught by this block's handlers).
                for (slot, ty, init) in decl_inits {
                    let v = match init {
                        Some(e) => self.eval(e)?,
                        None => Value::Null,
                    };
                    self.assign(*slot, ty, v)?;
                }
                match self.exec_stmts(body) {
                    Err(Error::Raised { condition, message }) => {
                        for (conditions, hbody) in handlers {
                            if plaway_plsql::ast::condition_matches(conditions, &condition) {
                                // First matching arm wins; handler bodies
                                // run outside this block's protection.
                                return self.exec_stmts(hbody);
                            }
                        }
                        Err(Error::Raised { condition, message })
                    }
                    other => other,
                }
            }
        }
    }

    fn loop_body_step(&mut self, label: Option<&str>, body: &[CStmt]) -> Result<LoopStep> {
        Ok(match self.exec_stmts(body)? {
            Flow::Normal => LoopStep::Continue,
            Flow::Return(v) => LoopStep::Propagate(Flow::Return(v)),
            Flow::Exit(None) => LoopStep::Break,
            Flow::Exit(Some(l)) => {
                if Some(l.as_str()) == label {
                    LoopStep::Break
                } else {
                    LoopStep::Propagate(Flow::Exit(Some(l)))
                }
            }
            Flow::Continue(None) => LoopStep::Continue,
            Flow::Continue(Some(l)) => {
                if Some(l.as_str()) == label {
                    LoopStep::Continue
                } else {
                    LoopStep::Propagate(Flow::Continue(Some(l)))
                }
            }
        })
    }
}

enum LoopStep {
    Continue,
    Break,
    Propagate(Flow),
}

/// PostgreSQL-style `%` substitution for RAISE (with `%%` escape).
fn format_raise(fmt: &str, args: &[Value]) -> String {
    let mut out = String::with_capacity(fmt.len() + 16);
    let mut arg_i = 0;
    let mut chars = fmt.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '%' {
            if chars.peek() == Some(&'%') {
                chars.next();
                out.push('%');
            } else if arg_i < args.len() {
                out.push_str(&args[arg_i].to_string());
                arg_i += 1;
            } else {
                out.push('%');
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use plaway_engine::EngineConfig;

    fn setup() -> (Session, Interpreter) {
        let mut s = Session::new(EngineConfig::postgres_like());
        s.run("CREATE TABLE kv (k int, v int)").unwrap();
        s.run("INSERT INTO kv VALUES (1, 100), (2, 200), (3, 300)")
            .unwrap();
        (s, Interpreter::new())
    }

    fn install(s: &mut Session, body: &str) {
        let sql = format!(
            "CREATE OR REPLACE FUNCTION f(n int) RETURNS int AS $$ {body} $$ LANGUAGE plpgsql"
        );
        s.run(&sql).unwrap();
    }

    fn call(s: &mut Session, i: &mut Interpreter, n: i64) -> Value {
        i.call(s, "f", &[Value::Int(n)]).unwrap()
    }

    #[test]
    fn trivial_return() {
        let (mut s, mut i) = setup();
        install(&mut s, "BEGIN RETURN n * 2; END");
        assert_eq!(call(&mut s, &mut i, 21), Value::Int(42));
    }

    #[test]
    fn declarations_and_assignment() {
        let (mut s, mut i) = setup();
        install(
            &mut s,
            "DECLARE a int := 10; b int; BEGIN b := a + n; a := a + b; RETURN a; END",
        );
        assert_eq!(call(&mut s, &mut i, 5), Value::Int(25));
    }

    #[test]
    fn embedded_query_reads_table() {
        let (mut s, mut i) = setup();
        install(
            &mut s,
            "DECLARE x int; BEGIN x := (SELECT v FROM kv WHERE k = n); RETURN x; END",
        );
        assert_eq!(call(&mut s, &mut i, 2), Value::Int(200));
        // Missing key -> NULL.
        assert_eq!(call(&mut s, &mut i, 99), Value::Null);
    }

    #[test]
    fn while_loop_computes() {
        let (mut s, mut i) = setup();
        install(
            &mut s,
            "DECLARE total int := 0; k int := 1; \
             BEGIN WHILE k <= n LOOP total := total + k; k := k + 1; END LOOP; \
             RETURN total; END",
        );
        assert_eq!(call(&mut s, &mut i, 10), Value::Int(55));
    }

    #[test]
    fn for_loop_with_exit_and_continue() {
        let (mut s, mut i) = setup();
        install(
            &mut s,
            "DECLARE total int := 0; \
             BEGIN \
               FOR k IN 1..100 LOOP \
                 CONTINUE WHEN k % 2 = 0; \
                 EXIT WHEN k > n; \
                 total := total + k; \
               END LOOP; \
               RETURN total; END",
        );
        // Sum of odd numbers 1..=9 = 25 (k=11 exits).
        assert_eq!(call(&mut s, &mut i, 10), Value::Int(25));
    }

    #[test]
    fn for_reverse_by_two() {
        let (mut s, mut i) = setup();
        install(
            &mut s,
            "DECLARE total int := 0; \
             BEGIN FOR k IN REVERSE 10..1 BY 2 LOOP total := total + k; END LOOP; \
             RETURN total; END",
        );
        // 10 + 8 + 6 + 4 + 2 = 30
        assert_eq!(call(&mut s, &mut i, 0), Value::Int(30));
    }

    #[test]
    fn labeled_nested_loops() {
        let (mut s, mut i) = setup();
        install(
            &mut s,
            "DECLARE hits int := 0; \
             BEGIN \
               <<outer>> FOR a IN 1..10 LOOP \
                 FOR b IN 1..10 LOOP \
                   hits := hits + 1; \
                   EXIT outer WHEN a * b >= n; \
                 END LOOP; \
               END LOOP; \
               RETURN hits; END",
        );
        // a=1: 10 inner iterations (product max 10 < 12); a=2, b=6 -> exit.
        assert_eq!(call(&mut s, &mut i, 12), Value::Int(16));
    }

    #[test]
    fn loop_variable_shadows_outer() {
        let (mut s, mut i) = setup();
        install(
            &mut s,
            "DECLARE k int := 1000; total int := 0; \
             BEGIN \
               FOR k IN 1..3 LOOP total := total + k; END LOOP; \
               RETURN total + k; END",
        );
        assert_eq!(call(&mut s, &mut i, 0), Value::Int(1006));
    }

    #[test]
    fn case_statement_dispatch() {
        let (mut s, mut i) = setup();
        install(
            &mut s,
            "BEGIN CASE n WHEN 1, 2 THEN RETURN 12; WHEN 3 THEN RETURN 3; \
             ELSE RETURN 0; END CASE; END",
        );
        assert_eq!(call(&mut s, &mut i, 2), Value::Int(12));
        assert_eq!(call(&mut s, &mut i, 3), Value::Int(3));
        assert_eq!(call(&mut s, &mut i, 9), Value::Int(0));
    }

    #[test]
    fn case_not_found_errors() {
        let (mut s, mut i) = setup();
        install(&mut s, "BEGIN CASE n WHEN 1 THEN RETURN 1; END CASE; END");
        let err = i.call(&mut s, "f", &[Value::Int(9)]).unwrap_err();
        assert!(err.to_string().contains("case not found"), "{err}");
    }

    #[test]
    fn missing_return_errors() {
        let (mut s, mut i) = setup();
        install(&mut s, "BEGIN NULL; END");
        let err = i.call(&mut s, "f", &[Value::Int(1)]).unwrap_err();
        assert!(err.to_string().contains("without RETURN"), "{err}");
    }

    #[test]
    fn raise_notice_and_exception() {
        let (mut s, mut i) = setup();
        install(
            &mut s,
            "BEGIN RAISE NOTICE 'n is % and doubled is %', n, n * 2; RETURN n; END",
        );
        call(&mut s, &mut i, 4);
        assert_eq!(i.notices.pop().unwrap(), "n is 4 and doubled is 8");

        install(&mut s, "BEGIN RAISE EXCEPTION 'boom %', n; RETURN 0; END");
        let err = i.call(&mut s, "f", &[Value::Int(7)]).unwrap_err();
        assert!(err.to_string().contains("boom 7"), "{err}");
    }

    #[test]
    fn statement_budget_stops_infinite_loops() {
        let (mut s, mut i) = setup();
        i.max_statements = 10_000;
        install(&mut s, "BEGIN LOOP NULL; END LOOP; RETURN 0; END");
        let err = i.call(&mut s, "f", &[Value::Int(1)]).unwrap_err();
        assert!(err.to_string().contains("budget"), "{err}");
    }

    #[test]
    fn profiler_buckets_query_vs_simple() {
        let (mut s, mut i) = setup();
        // Query-heavy function: Start/End must be populated.
        install(
            &mut s,
            "DECLARE t int := 0; \
             BEGIN FOR k IN 1..50 LOOP \
               t := t + (SELECT v FROM kv WHERE k = 1 + k % 3); \
             END LOOP; RETURN t; END",
        );
        s.reset_instrumentation();
        call(&mut s, &mut i, 0);
        assert!(
            s.profiler.exec_start_ns > 0,
            "queries must pay ExecutorStart"
        );
        assert!(s.profiler.exec_end_ns > 0);
        assert!(s.profiler.interp_ns > 0);
        assert_eq!(s.profiler.start_count, 50, "one Start per query evaluation");

        // Pure arithmetic function: no Start/End at all (the fibonacci row
        // of Table 1).
        install(
            &mut s,
            "DECLARE a int := 0; b int := 1; t int; \
             BEGIN FOR k IN 1..n LOOP t := a + b; a := b; b := t; END LOOP; \
             RETURN a; END",
        );
        s.reset_instrumentation();
        i.call(&mut s, "f", &[Value::Int(30)]).unwrap();
        assert_eq!(s.profiler.start_count, 0, "simple exprs skip Start/End");
        assert_eq!(s.profiler.exec_start_ns, 0);
        assert!(s.profiler.exec_run_ns > 0, "simple eval books Exec·Run");
        assert!(s.profiler.interp_ns > 0);
    }

    #[test]
    fn fibonacci_value_correct() {
        let (mut s, mut i) = setup();
        install(
            &mut s,
            "DECLARE a int := 0; b int := 1; t int; \
             BEGIN FOR k IN 1..n LOOP t := a + b; a := b; b := t; END LOOP; \
             RETURN a; END",
        );
        assert_eq!(call(&mut s, &mut i, 10), Value::Int(55));
        assert_eq!(call(&mut s, &mut i, 1), Value::Int(1));
        assert_eq!(call(&mut s, &mut i, 0), Value::Int(0));
    }

    #[test]
    fn plan_cache_reused_across_calls() {
        let (mut s, mut i) = setup();
        install(&mut s, "BEGIN RETURN (SELECT v FROM kv WHERE k = n); END");
        s.reset_instrumentation();
        call(&mut s, &mut i, 1);
        call(&mut s, &mut i, 2);
        call(&mut s, &mut i, 3);
        assert_eq!(s.plan_cache_misses, 1, "first call plans");
        assert_eq!(s.plan_cache_hits, 2, "subsequent calls hit the cache");
    }

    #[test]
    fn variable_substitution_inside_query() {
        // The paper's Q1 pattern: `location` is a variable, `loc` a column.
        let (mut s, mut i) = setup();
        s.run("CREATE TABLE policy (loc int, action text)").unwrap();
        s.run("INSERT INTO policy VALUES (1, 'up'), (2, 'down')")
            .unwrap();
        s.run(
            "CREATE FUNCTION mv(location int) RETURNS text AS $$ \
             DECLARE movement text; \
             BEGIN \
               movement := (SELECT p.action FROM policy AS p WHERE location = p.loc); \
               RETURN movement; \
             END $$ LANGUAGE plpgsql",
        )
        .unwrap();
        assert_eq!(
            i.call(&mut s, "mv", &[Value::Int(2)]).unwrap(),
            Value::text("down")
        );
    }

    #[test]
    fn assignment_casts_to_declared_type() {
        let (mut s, mut i) = setup();
        install(
            &mut s,
            "DECLARE x float8; BEGIN x := n; RETURN CAST(x * 2.5 AS int); END",
        );
        assert_eq!(call(&mut s, &mut i, 2), Value::Int(5));
    }

    #[test]
    fn perform_discards_but_runs() {
        let (mut s, mut i) = setup();
        install(
            &mut s,
            "BEGIN PERFORM (SELECT count(*) FROM kv); RETURN 1; END",
        );
        s.reset_instrumentation();
        call(&mut s, &mut i, 0);
        assert_eq!(s.profiler.start_count, 1, "PERFORM runs the query");
    }

    #[test]
    fn wrong_arity_is_an_error() {
        let (mut s, mut i) = setup();
        install(&mut s, "BEGIN RETURN n; END");
        assert!(i.call(&mut s, "f", &[]).is_err());
    }

    #[test]
    fn compiled_cache_invalidated_by_ddl() {
        let (mut s, mut i) = setup();
        install(&mut s, "BEGIN RETURN (SELECT count(*) FROM kv); END");
        assert_eq!(call(&mut s, &mut i, 0), Value::Int(3));
        s.run("INSERT INTO kv VALUES (4, 400)").unwrap();
        assert_eq!(call(&mut s, &mut i, 0), Value::Int(4));
    }

    #[test]
    fn query_expr_count_matches_paper_shape() {
        let (mut s, mut i) = setup();
        install(
            &mut s,
            "DECLARE a int; b int; \
             BEGIN \
               a := (SELECT v FROM kv WHERE k = 1); \
               b := a + (SELECT v FROM kv WHERE k = 2); \
               RETURN a + b + n; \
             END",
        );
        let c = i.compiled_for(&mut s, "f").unwrap();
        assert_eq!(c.query_expr_count, 2);
    }
}
