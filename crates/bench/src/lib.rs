//! `plaway-bench` — shared harness for regenerating every table and figure
//! of the paper.
//!
//! Binaries (each prints a paper-style artifact, see DESIGN.md §3):
//!
//! | binary | artifact |
//! |---|---|
//! | `profile_walk` | Figure 3 profile bars (per-`Qi` breakdown) |
//! | `table1` | Table 1 — % time in ExecStart/Run/End/Interp |
//! | `figure10` | Figure 10 — wall clock vs iterations, walk |
//! | `figure11` | Figures 11a/b — invocation × iteration heat maps |
//! | `table2` | Table 2 — buffer page writes, ITERATE vs RECURSIVE |
//! | `ablation` | execution-mode & design-choice ablations |
//!
//! `cargo bench` runs the criterion wrappers over the same kernels.

use std::time::{Duration, Instant};

use plaway_common::{Result, Value};
use plaway_core::{compile_sql, CompileOptions, Compiled};
use plaway_engine::{Database, EngineConfig, IndexMode, Session};
use plaway_interp::Interpreter;
use plaway_workloads::{checked, fib, fsa, graph, grid, rowagg};

/// A workload instance ready for measurement.
pub struct BenchSetup {
    pub session: Session,
    pub interp: Interpreter,
    pub fn_name: &'static str,
    pub source: String,
}

impl BenchSetup {
    /// Compile the workload's function with the given options.
    pub fn compile(&self, options: CompileOptions) -> Result<Compiled> {
        compile_sql(&self.session.catalog, &self.source, options)
    }

    /// One interpreted invocation.
    pub fn run_interp(&mut self, args: &[Value]) -> Result<Value> {
        self.interp.call(&mut self.session, self.fn_name, args)
    }

    /// Time `runs` interpreted invocations (returns per-run durations).
    pub fn time_interp(&mut self, args: &[Value], runs: usize) -> Result<Vec<Duration>> {
        let mut out = Vec::with_capacity(runs);
        for _ in 0..runs {
            let t0 = Instant::now();
            self.interp.call(&mut self.session, self.fn_name, args)?;
            out.push(t0.elapsed());
        }
        Ok(out)
    }

    /// Drive `calls` as N independent interpreted invocations, each paying
    /// the full executor lifecycle around its outer statement — the
    /// "millions of scalar calls" loop the batch trampoline replaces.
    /// Returns the results in input order.
    pub fn interp_loop(&mut self, calls: &[Vec<Value>]) -> Result<Vec<Value>> {
        // The outer statement shell each call rides in is prepared once —
        // generous to the loop side: a real client would at best hit the
        // plan cache here and still pay Start/End per statement.
        let shell = self
            .session
            .prepare("SELECT 1", &plaway_engine::ParamScope::new(Vec::new()))?;
        let mut out = Vec::with_capacity(calls.len());
        for args in calls {
            let handle = self.session.executor_start(&shell, Vec::new());
            let v = self.interp.call(&mut self.session, self.fn_name, args)?;
            self.session.executor_end(handle);
            out.push(v);
        }
        Ok(out)
    }

    /// Time `runs` compiled invocations (plan prepared once, like a cached
    /// inlined query).
    pub fn time_compiled(
        &mut self,
        compiled: &Compiled,
        args: &[Value],
        runs: usize,
    ) -> Result<Vec<Duration>> {
        let plan = compiled.prepare(&mut self.session)?;
        let mut out = Vec::with_capacity(runs);
        for _ in 0..runs {
            let t0 = Instant::now();
            self.session.execute_prepared(&plan, args.to_vec())?;
            out.push(t0.elapsed());
        }
        Ok(out)
    }
}

/// The robot world of Figures 1–3 (5×5 grid, seed 42 — the defaults every
/// artifact uses).
pub fn setup_walk(config: EngineConfig) -> BenchSetup {
    let mut session = Session::new(config);
    grid::GridWorld::generate(5, 5, 42)
        .install(&mut session)
        .expect("grid install");
    let w = grid::walk_workload();
    w.install(&mut session).expect("walk install");
    BenchSetup {
        session,
        interp: Interpreter::new(),
        fn_name: "walk",
        source: w.source,
    }
}

/// `walk` arguments with unreachable win/loose bounds: exactly `steps`
/// iterations.
pub fn walk_args(steps: i64) -> Vec<Value> {
    vec![
        Value::coord(2, 2),
        Value::Int(1_000_000),
        Value::Int(-1_000_000),
        Value::Int(steps),
    ]
}

/// The FSA `parse` workload.
pub fn setup_parse(config: EngineConfig) -> BenchSetup {
    let mut session = Session::new(config);
    fsa::install_fsa(&mut session).expect("fsa install");
    let w = fsa::parse_workload();
    w.install(&mut session).expect("parse install");
    BenchSetup {
        session,
        interp: Interpreter::new(),
        fn_name: "parse",
        source: w.source,
    }
}

/// `parse` argument: an accepted input of exactly `len` characters.
pub fn parse_args(len: usize) -> Vec<Value> {
    vec![Value::text(fsa::generate_input(len, 99))]
}

/// The digraph `traverse` workload (5000 nodes).
pub fn setup_traverse(config: EngineConfig) -> BenchSetup {
    let mut session = Session::new(config);
    graph::Digraph::generate(5_000, 11)
        .install(&mut session)
        .expect("graph install");
    let w = graph::traverse_workload();
    w.install(&mut session).expect("traverse install");
    BenchSetup {
        session,
        interp: Interpreter::new(),
        fn_name: "traverse",
        source: w.source,
    }
}

pub fn traverse_args(hops: i64) -> Vec<Value> {
    vec![Value::Int(1), Value::Int(hops)]
}

/// The query-less `fibonacci` workload.
pub fn setup_fib(config: EngineConfig) -> BenchSetup {
    let mut session = Session::new(config);
    let w = fib::fib_workload();
    w.install(&mut session).expect("fib install");
    BenchSetup {
        session,
        interp: Interpreter::new(),
        fn_name: "fibonacci",
        source: w.source,
    }
}

pub fn fib_args(n: i64) -> Vec<Value> {
    vec![Value::Int(n)]
}

/// Batch argument vectors for `fibonacci`: `n_i = i % 2`, i.e. a table of
/// *cheap* calls — the dispatch-bound regime where the per-call executor
/// lifecycle dominates and the single-fixpoint batch amortizes it away.
pub fn batch_fib_calls(n: usize) -> Vec<Vec<Value>> {
    (0..n).map(|i| vec![Value::Int((i % 2) as i64)]).collect()
}

/// Batch argument vectors for `checked_sum`: short 4-character per-row
/// inputs (seeded per row) with a low cap, so both EXCEPTION handler arms
/// fire somewhere in every sizable batch.
pub fn batch_checked_calls(n: usize) -> Vec<Vec<Value>> {
    (0..n)
        .map(|i| {
            vec![
                Value::text(checked::generate_input(4, i as u64)),
                Value::Int(50),
            ]
        })
        .collect()
}

/// The `checked_sum` error-handling workload (RAISE + EXCEPTION recovery
/// on every iteration, query-less).
pub fn setup_checked(config: EngineConfig) -> BenchSetup {
    let mut session = Session::new(config);
    let w = checked::checked_workload();
    w.install(&mut session).expect("checked install");
    BenchSetup {
        session,
        interp: Interpreter::new(),
        fn_name: "checked_sum",
        source: w.source,
    }
}

/// `checked_sum` arguments: a deterministic `len`-character input (seed 42,
/// ~15% non-digits so both handler arms fire) and a cap low enough to
/// overflow repeatedly.
pub fn checked_args(len: usize) -> Vec<Value> {
    vec![
        Value::text(checked::generate_input(len, 42)),
        Value::Int((len as i64) * 2),
    ]
}

/// The `settle` FOR-over-query workload (480-entry generated ledger —
/// long enough that the row loop, not the fixed executor lifecycle,
/// dominates; with the pre-materialize `LIMIT 1 OFFSET i-1` desugaring
/// this size would cost ~230k row touches, with the snapshot cursor it
/// costs 480).
pub fn setup_settle(config: EngineConfig) -> BenchSetup {
    let mut session = Session::new(config);
    rowagg::Ledger::generate(480, 7)
        .install(&mut session)
        .expect("ledger install");
    let w = rowagg::settle_workload();
    w.install(&mut session).expect("settle install");
    BenchSetup {
        session,
        interp: Interpreter::new(),
        fn_name: "settle",
        source: w.source,
    }
}

/// `settle` argument: an unreachable limit, so the loop folds every row.
pub fn settle_args() -> Vec<Value> {
    vec![Value::Int(1_000_000)]
}

/// How many ledger rows the scaled index fixtures generate (seed 7): big
/// enough that a full scan visibly loses to a probe, small enough that the
/// smoke bench stays in seconds.
pub const INDEX_LEDGER_ROWS: usize = 100_000;

/// The selective `settle_top` kernel at scale: a 10⁵-row ledger with a
/// btree on `amount` and a loop source that folds only the ~10% largest
/// entries. The access path the planner picks for the loop source — probe
/// or full scan — now decides how many rows the snapshot materialization
/// touches.
pub fn setup_settle_top(config: EngineConfig) -> BenchSetup {
    let mut session = Session::new(config);
    rowagg::Ledger::generate(INDEX_LEDGER_ROWS, 7)
        .install(&mut session)
        .expect("ledger install");
    session
        .run("CREATE INDEX ledger_amount ON ledger (amount)")
        .expect("ledger index");
    let w = rowagg::settle_top_workload();
    w.install(&mut session).expect("settle_top install");
    BenchSetup {
        session,
        interp: Interpreter::new(),
        fn_name: "settle_top",
        source: w.source,
    }
}

/// The same 10⁵-row indexed ledger attached twice to ONE database: an
/// `Auto` session whose planner may pick index access paths and a
/// `ForceOff` twin that always sequential-scans. Timing one prepared
/// query on both pins the index win end to end (`BENCH_smoke.json`'s
/// `index.*` keys, enforced ≥ 5× by `bench_gate`).
pub fn setup_index_sessions(config: EngineConfig) -> (Session, Session) {
    let db = Database::new(config);
    let mut indexed = db.session();
    rowagg::Ledger::generate(INDEX_LEDGER_ROWS, 7)
        .install(&mut indexed)
        .expect("ledger install");
    indexed
        .run("CREATE INDEX ledger_amount ON ledger (amount)")
        .expect("ledger index");
    let mut seq = db.session();
    seq.config.index_mode = IndexMode::ForceOff;
    (indexed, seq)
}

/// One request kind of the serve driver's mixed kernel load: a compiled
/// artifact (self-contained — scalar plans carry the inlined body, so no
/// per-session function registration is needed), its argument vector, and
/// the expected result where the kernel is deterministic (`walk` consults
/// the session RNG, so it is sanity-checked only).
pub struct ServeKernel {
    pub name: &'static str,
    pub compiled: Compiled,
    pub args: Vec<Value>,
    pub expected: Option<Value>,
}

/// Build the shared database the multi-threaded serve driver hammers: all
/// four kernel workloads (`fibonacci`, `checked_sum`, `settle`, `walk`)
/// installed into ONE `Database`, plus a `churn` table for the DDL/DML
/// writer thread. The workloads use disjoint table/function names, so they
/// coexist in a single catalog.
pub fn setup_serve(config: EngineConfig) -> (std::sync::Arc<Database>, Vec<ServeKernel>) {
    let db = Database::new(config);
    let mut s = db.session();

    let fib_w = fib::fib_workload();
    fib_w.install(&mut s).expect("fib install");
    let checked_w = checked::checked_workload();
    checked_w.install(&mut s).expect("checked install");
    rowagg::Ledger::generate(480, 7)
        .install(&mut s)
        .expect("ledger install");
    let settle_w = rowagg::settle_workload();
    settle_w.install(&mut s).expect("settle install");
    grid::GridWorld::generate(5, 5, 42)
        .install(&mut s)
        .expect("grid install");
    let walk_w = grid::walk_workload();
    walk_w.install(&mut s).expect("walk install");
    s.run("CREATE TABLE churn (k int, v int)")
        .expect("churn table");

    // Sized so one request is real work (recursion, handler unwinding, a
    // row loop) but short enough that a smoke run finishes in seconds.
    let specs: [(&'static str, &String, Vec<Value>); 4] = [
        ("fibonacci", &fib_w.source, fib_args(15)),
        ("checked_sum", &checked_w.source, checked_args(24)),
        ("settle", &settle_w.source, settle_args()),
        ("walk", &walk_w.source, walk_args(40)),
    ];
    let kernels = specs
        .into_iter()
        .map(|(name, source, args)| {
            let compiled = compile_sql(&s.catalog, source, CompileOptions::default())
                .unwrap_or_else(|e| panic!("{name} compile: {e}"));
            let expected = if name == "walk" {
                None
            } else {
                Some(compiled.run(&mut s, &args).expect(name))
            };
            ServeKernel {
                name,
                compiled,
                args,
                expected,
            }
        })
        .collect();
    (db, kernels)
}

/// A thread-private batch-mode `fibonacci` kernel for the mixed serve
/// phase: batch execution stages its input through a `batch#<fn>` table,
/// so each worker gets the function renamed to `fib_w<worker>` — distinct
/// staging tables, no cross-thread clobbering.
pub fn serve_batch_fib(db: &std::sync::Arc<Database>, worker: usize) -> Compiled {
    let source = fib::fib_workload()
        .source
        .replace("fibonacci", &format!("fib_w{worker}"));
    compile_sql(&db.snapshot(), &source, CompileOptions::default()).expect("batch fib compile")
}

/// Mean / min / max of a duration sample, in milliseconds.
pub fn stats_ms(samples: &[Duration]) -> (f64, f64, f64) {
    let ms: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e3).collect();
    let mean = ms.iter().sum::<f64>() / ms.len() as f64;
    let min = ms.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = ms.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    (mean, min, max)
}

/// Round a duration up to the configured timer resolution (Figure 11b's
/// "coarse timer"); returns `None` when the measurement is below the timer's
/// resolution — the paper omits those cells.
pub fn with_timer_resolution(d: Duration, resolution_ms: u64) -> Option<Duration> {
    if resolution_ms == 0 {
        return Some(d);
    }
    let res = Duration::from_millis(resolution_ms);
    if d < res {
        None
    } else {
        let ticks = d.as_nanos().div_ceil(res.as_nanos());
        Some(Duration::from_nanos((ticks * res.as_nanos()) as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setups_produce_working_workloads() {
        let mut b = setup_walk(EngineConfig::raw());
        b.session.set_seed(3);
        let v = b.run_interp(&walk_args(50)).unwrap();
        assert!(v.as_int().is_ok());

        let mut b = setup_parse(EngineConfig::raw());
        let v = b.run_interp(&parse_args(100)).unwrap();
        assert_eq!(v, Value::Int(100));

        let mut b = setup_traverse(EngineConfig::raw());
        let v = b.run_interp(&traverse_args(20)).unwrap();
        assert!(v.as_int().is_ok());

        let mut b = setup_fib(EngineConfig::raw());
        let v = b.run_interp(&fib_args(30)).unwrap();
        assert_eq!(v, Value::Int(fib::fib_reference(30)));

        let mut b = setup_checked(EngineConfig::raw());
        let v = b.run_interp(&checked_args(50)).unwrap();
        let input = checked::generate_input(50, 42);
        assert_eq!(v, Value::Int(checked::checked_reference(&input, 100)));

        let mut b = setup_settle(EngineConfig::raw());
        let v = b.run_interp(&settle_args()).unwrap();
        assert_eq!(
            v,
            Value::Int(rowagg::Ledger::generate(480, 7).settle_reference(1_000_000))
        );
    }

    #[test]
    fn new_workload_kernels_agree_compiled_vs_interp() {
        for (mut b, args) in [
            (setup_checked(EngineConfig::raw()), checked_args(80)),
            (setup_settle(EngineConfig::raw()), settle_args()),
        ] {
            let compiled = b.compile(CompileOptions::default()).unwrap();
            let i = b.run_interp(&args).unwrap();
            let c = compiled.run(&mut b.session, &args).unwrap();
            assert_eq!(i, c, "{}", b.fn_name);
        }
    }

    #[test]
    fn batch_agrees_with_interp_loop() {
        let mut b = setup_fib(EngineConfig::raw());
        let compiled = b.compile(CompileOptions::default()).unwrap();
        let calls = batch_fib_calls(12);
        let loop_results = b.interp_loop(&calls).unwrap();
        let batch_results = compiled.run_batch(&mut b.session, &calls).unwrap();
        assert_eq!(loop_results, batch_results);

        let mut b = setup_checked(EngineConfig::raw());
        let compiled = b.compile(CompileOptions::default()).unwrap();
        let calls = batch_checked_calls(12);
        let loop_results = b.interp_loop(&calls).unwrap();
        let batch_results = compiled.run_batch(&mut b.session, &calls).unwrap();
        assert_eq!(loop_results, batch_results);
    }

    #[test]
    fn compiled_and_interp_agree_in_harness() {
        let mut b = setup_parse(EngineConfig::raw());
        let compiled = b.compile(CompileOptions::default()).unwrap();
        let args = parse_args(300);
        let i = b.run_interp(&args).unwrap();
        let c = compiled.run(&mut b.session, &args).unwrap();
        assert_eq!(i, c);
    }

    #[test]
    fn serve_setup_kernels_verify_from_a_second_session() {
        let (db, kernels) = setup_serve(EngineConfig::raw());
        // A *fresh* session (not the one that installed the workloads) must
        // be able to run every kernel — that is the whole point of the
        // shared-database split.
        let mut s = db.session();
        for k in &kernels {
            let got = k.compiled.run(&mut s, &k.args).unwrap();
            match &k.expected {
                Some(want) => assert_eq!(&got, want, "{}", k.name),
                None => assert!(got.as_int().is_ok(), "{}", k.name),
            }
        }
        assert_eq!(
            kernels.iter().map(|k| k.name).collect::<Vec<_>>(),
            ["fibonacci", "checked_sum", "settle", "walk"]
        );

        // The per-worker batch kernel stages into a worker-private table
        // and agrees with the scalar reference.
        let batch = serve_batch_fib(&db, 7);
        let calls = batch_fib_calls(8);
        let results = batch.run_batch(&mut s, &calls).unwrap();
        for (args, got) in calls.iter().zip(&results) {
            assert_eq!(
                *got,
                Value::Int(fib::fib_reference(args[0].as_int().unwrap()))
            );
        }
        assert!(s.catalog.table("batch#fib_w7").is_ok());
    }

    #[test]
    fn index_sessions_agree_and_only_auto_probes() {
        let (mut indexed, mut seq) = setup_index_sessions(EngineConfig::raw());
        for sql in [
            "SELECT count(*), sum(l.kind) FROM ledger AS l WHERE l.amount = 37",
            "SELECT count(*), sum(l.kind) FROM ledger AS l WHERE l.amount >= 90 AND l.amount < 96",
        ] {
            let a = indexed.run(sql).unwrap();
            let b = seq.run(sql).unwrap();
            assert_eq!(a.rows, b.rows, "{sql}");
        }
        assert!(indexed.metrics.index_probes > 0, "Auto session must probe");
        assert_eq!(seq.metrics.index_probes, 0, "ForceOff twin must scan");
    }

    #[test]
    fn timer_resolution_rounds_up_or_hides() {
        assert_eq!(
            with_timer_resolution(Duration::from_millis(14), 10),
            Some(Duration::from_millis(20))
        );
        assert_eq!(with_timer_resolution(Duration::from_millis(4), 10), None);
        assert_eq!(
            with_timer_resolution(Duration::from_millis(4), 0),
            Some(Duration::from_millis(4))
        );
    }

    #[test]
    fn stats_compute_envelope() {
        let (mean, min, max) = stats_ms(&[
            Duration::from_millis(10),
            Duration::from_millis(20),
            Duration::from_millis(30),
        ]);
        assert!((mean - 20.0).abs() < 1e-9);
        assert!((min - 10.0).abs() < 1e-9);
        assert!((max - 30.0).abs() < 1e-9);
    }
}
