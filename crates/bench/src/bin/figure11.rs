//! Figures 11a/b: heat maps of relative run time (%) — recursive SQL vs
//! iterative PL/SQL — across #invocations × #iterations.
//!
//! Usage:
//!   cargo run --release -p plaway-bench --bin figure11              # both, quick grid
//!   cargo run --release -p plaway-bench --bin figure11 -- walk       # 11a only
//!   cargo run --release -p plaway-bench --bin figure11 -- parse-oracle
//!   cargo run --release -p plaway-bench --bin figure11 -- walk full  # the paper's full grid

use std::time::{Duration, Instant};

use plaway_bench::*;
use plaway_core::CompileOptions;
use plaway_engine::EngineConfig;

const ITER_COLS: &[i64] = &[2, 4, 8, 16, 32, 64, 256, 1024];
const INVOCATION_ROWS: &[i64] = &[2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];

fn heat_map(
    name: &str,
    mut setup: BenchSetup,
    args_of: impl Fn(i64) -> Vec<plaway_common::Value>,
    full: bool,
) {
    let timer_ms = setup.session.config.timer_resolution_ms;
    let compiled = setup.compile(CompileOptions::default()).unwrap();
    let plan = compiled.prepare(&mut setup.session).unwrap();

    let rows: Vec<i64> = if full {
        INVOCATION_ROWS.to_vec()
    } else {
        INVOCATION_ROWS
            .iter()
            .copied()
            .filter(|&r| r <= 256)
            .collect()
    };
    let cols: Vec<i64> = if full {
        ITER_COLS.to_vec()
    } else {
        ITER_COLS.iter().copied().filter(|&c| c <= 256).collect()
    };

    println!("\nFigure 11 ({name}): relative run time (%) of recursive SQL vs iterative PL/SQL");
    println!("(rows: #invocations Q->f; columns: #iterations f->Qi; <100 = SQL wins)\n");
    print!("{:>12} |", "inv \\ iter");
    for c in &cols {
        print!("{c:>6}");
    }
    println!();
    print!("{:->12}-+", "");
    for _ in &cols {
        print!("{:->6}", "");
    }
    println!();

    for &inv in &rows {
        print!("{inv:>12} |",);
        for &it in &cols {
            let args = args_of(it);
            // Warm both plans.
            setup.session.set_seed(9);
            setup.run_interp(&args).unwrap();
            setup
                .session
                .execute_prepared(&plan, args.to_vec())
                .unwrap();

            // The embracing query Q invokes f once per row: `inv` rows.
            setup.session.set_seed(9);
            let t0 = Instant::now();
            for _ in 0..inv {
                setup.run_interp(&args).unwrap();
            }
            let interp: Duration = t0.elapsed();

            setup.session.set_seed(9);
            let t0 = Instant::now();
            for _ in 0..inv {
                setup
                    .session
                    .execute_prepared(&plan, args.to_vec())
                    .unwrap();
            }
            let sql = t0.elapsed();

            match (
                with_timer_resolution(sql, timer_ms),
                with_timer_resolution(interp, timer_ms),
            ) {
                (Some(s), Some(i)) => {
                    print!("{:>6.0}", s.as_secs_f64() / i.as_secs_f64() * 100.0)
                }
                // Below the engine's timer resolution: the paper leaves
                // these cells blank on Oracle.
                _ => print!("{:>6}", "."),
            }
        }
        println!();
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "full");
    let which = args.first().map(String::as_str).unwrap_or("both");

    if which == "walk" || which == "both" {
        heat_map(
            "a: walk on postgres profile",
            setup_walk(EngineConfig::postgres_like()),
            walk_args,
            full,
        );
        println!("\npaper 11a: stable ~55-60% beyond 32 invocations/iterations;");
        println!("           >100% only in the lower-left corner (2-8 x 2-8).");
    }
    if which == "parse-oracle" || which == "both" {
        heat_map(
            "b: parse on oracle profile",
            setup_parse(EngineConfig::oracle_like()),
            |n| parse_args(n as usize),
            full,
        );
        println!("\npaper 11b: ~44-50% at high iteration counts; lower-left cells");
        println!("           omitted due to the DBMS's coarse timer resolution.");
    }
}
