//! Table 1: run time spent (in %) during PL/SQL evaluation.
//!
//! Columns: Exec·Start | Exec·Run | Exec·End | Interp. Bold (here: bracketed)
//! entries are the `f→Qi` context-switch overhead the paper calls out.
//!
//! Usage: `cargo run --release -p plaway-bench --bin table1`

use plaway_bench::*;
use plaway_engine::EngineConfig;

/// A table row: workload name plus a closure producing its warmed profile.
type ProfiledRow = (&'static str, Box<dyn FnOnce() -> plaway_engine::Profiler>);

fn main() {
    println!("Table 1: Run time spent (in %) during PL/SQL evaluation.");
    println!("[bracketed] = f->Qi context-switch overhead (ExecutorStart/End)\n");
    println!(
        "{:<12} {:>12} {:>10} {:>12} {:>8} | {:>9}",
        "function", "Exec.Start", "Exec.Run", "Exec.End", "Interp", "overhead"
    );
    println!(
        "{:-<12} {:->12} {:->10} {:->12} {:->8}-+-{:->9}",
        "", "", "", "", "", ""
    );

    let rows: Vec<ProfiledRow> = vec![
        (
            "walk",
            Box::new(|| {
                let mut b = setup_walk(EngineConfig::postgres_like());
                let args = walk_args(1_000);
                b.session.set_seed(1);
                b.run_interp(&args).unwrap(); // warm plans
                b.session.reset_instrumentation();
                b.session.set_seed(1);
                b.run_interp(&args).unwrap();
                b.session.profiler
            }),
        ),
        (
            "parse",
            Box::new(|| {
                let mut b = setup_parse(EngineConfig::postgres_like());
                let args = parse_args(5_000);
                b.run_interp(&args).unwrap();
                b.session.reset_instrumentation();
                b.run_interp(&args).unwrap();
                b.session.profiler
            }),
        ),
        (
            "traverse",
            Box::new(|| {
                let mut b = setup_traverse(EngineConfig::postgres_like());
                let args = traverse_args(2_000);
                b.run_interp(&args).unwrap();
                b.session.reset_instrumentation();
                b.run_interp(&args).unwrap();
                b.session.profiler
            }),
        ),
        (
            "fibonacci",
            Box::new(|| {
                let mut b = setup_fib(EngineConfig::postgres_like());
                let args = fib_args(100_000);
                b.run_interp(&args).unwrap();
                b.session.reset_instrumentation();
                b.run_interp(&args).unwrap();
                b.session.profiler
            }),
        ),
    ];

    for (name, run) in rows {
        let prof = run();
        let (s, r, e, i) = prof.percentages();
        println!(
            "{name:<12} {:>11} {r:>10.2} {:>11} {i:>8.2} | {:>8.1}%",
            format!("[{s:.2}]"),
            format!("[{e:.2}]"),
            prof.switch_overhead_pct()
        );
    }

    println!("\npaper (PostgreSQL 11.3):");
    println!("  walk      [30.89]    55.13  [4.36]   9.63  | 35.3%");
    println!("  parse     [13.84]    68.52  [2.20]  15.62  | 16.0%");
    println!("  traverse  [31.80]    35.82  [6.03]  26.35  | 37.8%");
    println!("  fibonacci [0]        90.45  [0]      9.55  |  0.0%");
}
