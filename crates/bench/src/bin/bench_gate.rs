//! CI bench-regression gate.
//!
//! Compares a freshly produced `BENCH_smoke.json` against the committed
//! baseline and fails (exit code 1) when any shared key regressed beyond
//! the tolerance, when a baseline key disappeared, or when the paper's
//! headline property — compiled fibonacci beating the interpreter — no
//! longer holds in the fresh numbers. Fresh numbers are normalized by the
//! median fresh/baseline ratio first, so a uniformly slower or faster
//! machine (CI runner vs the baseline's container) does not trip the gate;
//! only keys that move against the pack do.
//!
//! Usage:
//! `bench_gate <baseline.json> <fresh.json> [tolerance-pct]`
//! (default tolerance 25%).

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Parse the flat `{"key": int, ...}` JSON that `bench_smoke` emits.
/// Hand-rolled on purpose: the container has no serde, and the format is
/// fixed by our own writer.
fn parse_bench_json(text: &str) -> Result<BTreeMap<String, u128>, String> {
    let mut out = BTreeMap::new();
    let body = text.trim();
    let body = body
        .strip_prefix('{')
        .and_then(|b| b.strip_suffix('}'))
        .ok_or("not a JSON object")?;
    for line in body.split(',') {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (key, value) = line
            .split_once(':')
            .ok_or_else(|| format!("bad entry {line:?}"))?;
        let key = key
            .trim()
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| format!("bad key {key:?}"))?;
        let value: u128 = value
            .trim()
            .parse()
            .map_err(|_| format!("bad value for {key:?}: {value:?}"))?;
        out.insert(key.to_string(), value);
    }
    Ok(out)
}

/// Median ratio fresh/baseline across shared keys: a hardware-speed
/// calibration factor. CI runners are not the machine the baseline was
/// committed from; a uniformly slower (or faster) machine scales every
/// key alike, while a real regression moves individual keys against the
/// pack. Normalizing by the median cancels the former and keeps the
/// latter.
fn scale_factor(baseline: &BTreeMap<String, u128>, fresh: &BTreeMap<String, u128>) -> f64 {
    let mut ratios: Vec<f64> = baseline
        .iter()
        .filter(|(k, _)| !k.starts_with("serve."))
        .filter_map(|(k, &b)| fresh.get(k).map(|&f| f as f64 / b as f64))
        .collect();
    if ratios.is_empty() {
        return 1.0;
    }
    ratios.sort_by(f64::total_cmp);
    ratios[ratios.len() / 2]
}

/// One gate violation, human-readable.
fn check(
    baseline: &BTreeMap<String, u128>,
    fresh: &BTreeMap<String, u128>,
    tolerance_pct: u128,
) -> Vec<String> {
    let mut failures = Vec::new();
    let scale = scale_factor(baseline, fresh);
    for (key, &base) in baseline {
        // `serve.*` keys are throughput/ratio numbers (higher is better)
        // with machine-dependent thread counts; the dedicated serve checks
        // below gate them, not the lower-is-better ns comparison.
        if key.starts_with("serve.") {
            continue;
        }
        match fresh.get(key) {
            None => failures.push(format!("key {key:?} missing from fresh results")),
            Some(&now) => {
                let normalized = now as f64 / scale;
                let limit = (base + base * tolerance_pct / 100) as f64;
                if normalized > limit {
                    failures.push(format!(
                        "{key}: {now} ns ({normalized:.0} ns at machine scale {scale:.2}) vs \
                         baseline {base} ns (> +{tolerance_pct}% limit {limit:.0})"
                    ));
                }
            }
        }
    }
    // The paper's thesis, enforced: the compiled fibonacci modes must beat
    // the interpreter in the fresh numbers — and, since the EXCEPTION
    // machinery landed, so must the compiled `checked` error-handling
    // kernel (ITERATE mode; its margin is the widest). With the
    // materialize-once row-loop operator, `settle` flipped too: both
    // compiled modes must now beat the interpreter's one-shot cursor.
    let flips: &[(&str, &[&str])] = &[
        (
            "fibonacci.interpreter",
            &["fibonacci.with_recursive", "fibonacci.with_iterate"],
        ),
        ("checked.interpreter", &["checked.with_iterate"]),
        (
            "settle.interpreter",
            &["settle.with_recursive", "settle.with_iterate"],
        ),
    ];
    for (interp_key, modes) in flips {
        let Some(&interp) = fresh.get(*interp_key) else {
            continue;
        };
        for mode in *modes {
            if let Some(&compiled) = fresh.get(*mode) {
                if compiled >= interp {
                    failures.push(format!(
                        "{mode} ({compiled} ns) must be faster than {interp_key} \
                         ({interp} ns) — the compiled path lost its win"
                    ));
                }
            }
        }
    }
    // The batch trampoline's acceptance bar. Both per-call throughput pairs
    // must exist — a bench refactor silently dropping them must not pass —
    // and the single-fixpoint batch must beat N independent interpreted
    // calls by the kernel's factor: 5× for the dispatch-bound fibonacci
    // batch (per-call lifecycle dominates, amortization is the whole win),
    // 1.5× for the text-heavy checked batch (its per-call body work dwarfs
    // the lifecycle, so the honest margin is smaller).
    let batch_gates: &[(&str, f64)] = &[("fibonacci", 5.0), ("checked", 1.5)];
    for (kernel, factor) in batch_gates {
        let compiled_key = format!("batch.{kernel}.compiled_ns_per_call");
        let interp_key = format!("batch.{kernel}.interp_ns_per_call");
        match (fresh.get(&compiled_key), fresh.get(&interp_key)) {
            (Some(&compiled), Some(&interp)) => {
                let ratio = interp as f64 / compiled as f64;
                if ratio < *factor {
                    failures.push(format!(
                        "batch.{kernel}: compiled {compiled} ns/call vs interpreted \
                         {interp} ns/call is only {ratio:.2}x, need >= {factor}x — \
                         the batch trampoline lost its amortization win"
                    ));
                }
            }
            _ => failures.push(format!(
                "batch throughput keys {compiled_key:?} / {interp_key:?} \
                 missing from fresh results"
            )),
        }
    }
    // The cost-based access-path acceptance bar: on the 10⁵-row indexed
    // ledger, the Auto planner's probe must beat the ForceOff sequential
    // scan by ≥ 5× on both the point and the range predicate. Both keys of
    // each pair must exist — a bench refactor silently dropping the index
    // section must not pass. (`index.settle_top.*` is trajectory-only: the
    // kernel's fixpoint fold dominates the scan, so no ratio is enforced.)
    let index_gates: &[(&str, f64)] = &[("point", 5.0), ("range", 5.0)];
    for (probe, factor) in index_gates {
        let indexed_key = format!("index.{probe}.indexed_ns");
        let seq_key = format!("index.{probe}.seq_ns");
        match (fresh.get(&indexed_key), fresh.get(&seq_key)) {
            (Some(&indexed), Some(&seq)) => {
                let ratio = seq as f64 / indexed as f64;
                if ratio < *factor {
                    failures.push(format!(
                        "index.{probe}: indexed {indexed} ns vs seq scan {seq} ns is \
                         only {ratio:.2}x, need >= {factor}x — the index access path \
                         lost its win"
                    ));
                }
            }
            _ => failures.push(format!(
                "index access-path keys {indexed_key:?} / {seq_key:?} \
                 missing from fresh results"
            )),
        }
    }
    // The tiered-execution acceptance bar: on both shape-recognized
    // kernels the typed mono pipeline must run each fixpoint iteration
    // ≥ 1.5× faster than the `Value`-domain VM. Both keys of each pair
    // must exist — a bench refactor silently dropping the tier section
    // must not pass. Per-iteration ns makes the ratio machine-portable:
    // both tiers run the same iterations on the same inputs, so dispatch
    // and boxing overhead is the only thing the quotient can measure.
    for kernel in ["fibonacci", "fsa"] {
        let vm_key = format!("tier.{kernel}.vm_ns_per_iter");
        let mono_key = format!("tier.{kernel}.mono_ns_per_iter");
        match (fresh.get(&vm_key), fresh.get(&mono_key)) {
            (Some(&vm), Some(&mono)) => {
                let ratio = vm as f64 / mono as f64;
                if ratio < TIER_SPEEDUP_MIN {
                    failures.push(format!(
                        "tier.{kernel}: mono {mono} ns/iter vs vm {vm} ns/iter is \
                         only {ratio:.2}x, need >= {TIER_SPEEDUP_MIN}x — the mono \
                         tier lost its win"
                    ));
                }
            }
            _ => failures.push(format!(
                "tier keys {vm_key:?} / {mono_key:?} missing from fresh results"
            )),
        }
    }
    failures.extend(check_serve(fresh));
    failures
}

/// The mono tier's per-iteration win over the VM, on both recognized
/// kernels.
const TIER_SPEEDUP_MIN: f64 = 1.5;

/// Concurrent-serving acceptance. Read scaling must be ≥ 2.5× at 4 reader
/// threads — but only on runners that actually have ≥ 4 hardware threads
/// (`serve.threads_available`, recorded by `serve_bench` itself). On
/// smaller machines the threads time-slice one core and the honest bar is
/// a no-collapse floor: 4 contending threads must still reach ≥ 0.5× of
/// single-thread throughput, i.e. the shared catalog/plan-cache locks must
/// not serialize readers into losing most of their standalone speed.
const SERVE_SCALING_MIN_X100: u128 = 250;
const SERVE_NO_COLLAPSE_MIN_X100: u128 = 50;
/// Warm plan-cache hit rate over the mixed workload's steady state. The
/// serve loop prepares each statement once and replays it, so after the
/// warmup pass nearly every execution must be a cache hit; a rate below
/// 90% means the shared plan cache is thrashing (bad keying, eviction
/// churn) and sessions are silently re-planning.
const SERVE_WARM_HIT_RATE_MIN_X100: u128 = 90;

fn check_serve(fresh: &BTreeMap<String, u128>) -> Vec<String> {
    let mut failures = Vec::new();
    let required = [
        "serve.threads_available",
        "serve.read.rps_1t",
        "serve.read.rps_4t",
        "serve.read.scaling_x100",
        "serve.read.p50_ns",
        "serve.read.p95_ns",
        "serve.read.p99_ns",
        "serve.mixed.rps_4t",
        "serve.mixed.p50_ns",
        "serve.mixed.p95_ns",
        "serve.mixed.p99_ns",
        "serve.cache.warm_hit_rate_x100",
    ];
    let missing: Vec<&str> = required
        .iter()
        .filter(|k| !fresh.contains_key(**k))
        .copied()
        .collect();
    if !missing.is_empty() {
        failures.push(format!(
            "serve keys missing from fresh results: {missing:?} — \
             run serve_bench before gating"
        ));
        return failures;
    }
    let threads = fresh["serve.threads_available"];
    let scaling = fresh["serve.read.scaling_x100"];
    let min = if threads >= 4 {
        SERVE_SCALING_MIN_X100
    } else {
        SERVE_NO_COLLAPSE_MIN_X100
    };
    if scaling < min {
        failures.push(format!(
            "serve.read.scaling_x100 = {scaling} (rps {} -> {} at 4 threads, \
             {threads} hw threads): need >= {min} — concurrent readers \
             {}",
            fresh["serve.read.rps_1t"],
            fresh["serve.read.rps_4t"],
            if threads >= 4 {
                "must scale >= 2.5x on a >= 4-core runner"
            } else {
                "collapsed under contention on a small machine"
            }
        ));
    }
    for key in ["serve.read.p99_ns", "serve.mixed.p99_ns"] {
        if fresh[key] == 0 {
            failures.push(format!("{key} is 0 — latency sampling is broken"));
        }
    }
    let hit_rate = fresh["serve.cache.warm_hit_rate_x100"];
    if hit_rate < SERVE_WARM_HIT_RATE_MIN_X100 {
        failures.push(format!(
            "serve.cache.warm_hit_rate_x100 = {hit_rate}: need >= \
             {SERVE_WARM_HIT_RATE_MIN_X100} — the shared plan cache is \
             re-planning prepared statements in steady state"
        ));
    }
    failures
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let (baseline_path, fresh_path) = match (args.get(1), args.get(2)) {
        (Some(b), Some(f)) => (b, f),
        _ => {
            eprintln!("usage: bench_gate <baseline.json> <fresh.json> [tolerance-pct]");
            return ExitCode::from(2);
        }
    };
    let tolerance_pct: u128 = args
        .get(3)
        .map(|t| t.parse().expect("tolerance must be an integer percent"))
        .unwrap_or(25);

    let read = |path: &str| {
        std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {path}: {e}"))
            .and_then(|t| parse_bench_json(&t).map_err(|e| format!("{path}: {e}")))
    };
    let baseline = match read(baseline_path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::from(2);
        }
    };
    let fresh = match read(fresh_path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::from(2);
        }
    };

    for (key, &now) in &fresh {
        match baseline.get(key) {
            Some(&base) => {
                let delta = now as f64 / base as f64 - 1.0;
                println!("{key}: {base} -> {now} ns ({:+.1}%)", delta * 100.0);
            }
            None => println!("{key}: {now} ns (new, no baseline)"),
        }
    }

    let failures = check(&baseline, &fresh, tolerance_pct);
    if failures.is_empty() {
        println!(
            "bench-gate OK ({} keys, tolerance {tolerance_pct}%)",
            baseline.len()
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("bench-gate FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(entries: &[(&str, u128)]) -> BTreeMap<String, u128> {
        entries.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    /// A fresh map with batch throughput keys that satisfy the batch gate,
    /// so tests about the *other* checks aren't polluted by it.
    fn batch_ok(mut m: BTreeMap<String, u128>) -> BTreeMap<String, u128> {
        for (k, v) in [
            ("batch.fibonacci.compiled_ns_per_call", 700u128),
            ("batch.fibonacci.interp_ns_per_call", 4500),
            ("batch.checked.compiled_ns_per_call", 4000),
            ("batch.checked.interp_ns_per_call", 9500),
        ] {
            m.insert(k.to_string(), v);
        }
        tier_ok(index_ok(serve_ok(m)))
    }

    /// A fresh map with tier keys that satisfy the ≥ 1.5× mono gate
    /// (fibonacci at ~2.3×, fsa at ~1.7× — the measured margins).
    fn tier_ok(mut m: BTreeMap<String, u128>) -> BTreeMap<String, u128> {
        for (k, v) in [
            ("tier.fibonacci.vm_ns_per_iter", 280u128),
            ("tier.fibonacci.mono_ns_per_iter", 120),
            ("tier.fsa.vm_ns_per_iter", 1800),
            ("tier.fsa.mono_ns_per_iter", 1080),
        ] {
            m.entry(k.to_string()).or_insert(v);
        }
        m
    }

    /// A fresh map with index access-path keys that satisfy the ≥ 5× gate
    /// (point at 50×, range at ~20×, settle_top trajectory-only).
    fn index_ok(mut m: BTreeMap<String, u128>) -> BTreeMap<String, u128> {
        for (k, v) in [
            ("index.point.indexed_ns", 60_000u128),
            ("index.point.seq_ns", 3_000_000),
            ("index.range.indexed_ns", 150_000),
            ("index.range.seq_ns", 3_100_000),
            ("index.settle_top.indexed_ns", 8_000_000),
            ("index.settle_top.seq_ns", 9_000_000),
        ] {
            m.entry(k.to_string()).or_insert(v);
        }
        m
    }

    /// A fresh map with serve keys that satisfy the concurrency gate
    /// (8 hardware threads, 3.0× read scaling, nonzero tails).
    fn serve_ok(mut m: BTreeMap<String, u128>) -> BTreeMap<String, u128> {
        for (k, v) in [
            ("serve.threads_available", 8u128),
            ("serve.read.rps_1t", 1000),
            ("serve.read.rps_4t", 3000),
            ("serve.read.scaling_x100", 300),
            ("serve.read.p50_ns", 200_000),
            ("serve.read.p95_ns", 400_000),
            ("serve.read.p99_ns", 900_000),
            ("serve.mixed.rps_4t", 800),
            ("serve.mixed.p50_ns", 300_000),
            ("serve.mixed.p95_ns", 2_000_000),
            ("serve.mixed.p99_ns", 9_000_000),
            ("serve.cache.warm_hit_rate_x100", 99),
        ] {
            m.entry(k.to_string()).or_insert(v);
        }
        m
    }

    #[test]
    fn parses_bench_smoke_format() {
        let text = "{\n  \"walk.interpreter\": 1699912,\n  \"fibonacci.with_iterate\": 639418\n}\n";
        let m = parse_bench_json(text).unwrap();
        assert_eq!(m["walk.interpreter"], 1699912);
        assert_eq!(m["fibonacci.with_iterate"], 639418);
        assert!(parse_bench_json("not json").is_err());
    }

    #[test]
    fn within_tolerance_passes() {
        let base = map(&[("k.a", 1000), ("k.b", 2000)]);
        let fresh = batch_ok(map(&[("k.a", 1200), ("k.b", 1500)]));
        assert!(check(&base, &fresh, 25).is_empty());
    }

    #[test]
    fn regression_beyond_tolerance_fails() {
        // Three stable keys pin the machine-scale median at 1.0; the
        // fourth regresses against the pack.
        let base = map(&[("k.a", 1000), ("k.b", 1000), ("k.c", 1000), ("k.d", 1000)]);
        let fresh = batch_ok(map(&[
            ("k.a", 1300),
            ("k.b", 1000),
            ("k.c", 1000),
            ("k.d", 1000),
        ]));
        let failures = check(&base, &fresh, 25);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("k.a"));
    }

    #[test]
    fn uniformly_slower_machine_passes() {
        // Everything 2x slower (different hardware): the median scale
        // cancels it, no false regressions.
        let base = map(&[("k.a", 1000), ("k.b", 2000), ("k.c", 3000)]);
        let fresh = batch_ok(map(&[("k.a", 2000), ("k.b", 4000), ("k.c", 6000)]));
        assert!(check(&base, &fresh, 25).is_empty());
        // ... but a key regressing on top of the uniform slowdown fails.
        let fresh = batch_ok(map(&[("k.a", 2900), ("k.b", 4000), ("k.c", 6000)]));
        let failures = check(&base, &fresh, 25);
        assert_eq!(failures.len(), 1, "{failures:?}");
    }

    #[test]
    fn missing_key_fails_new_key_passes() {
        let base = map(&[("k.a", 1000)]);
        let fresh = map(&[("k.b", 1000)]);
        assert!(
            !check(&base, &fresh, 25).is_empty(),
            "missing key must fail"
        );
        let base = map(&[("k.a", 1000)]);
        let fresh = batch_ok(map(&[("k.a", 1000), ("k.new", 5)]));
        assert!(check(&base, &fresh, 25).is_empty(), "new keys are fine");
    }

    #[test]
    fn compiled_fibonacci_must_beat_interpreter() {
        let base = map(&[]);
        let fresh = batch_ok(map(&[
            ("fibonacci.interpreter", 1000),
            ("fibonacci.with_recursive", 1100),
            ("fibonacci.with_iterate", 900),
        ]));
        let failures = check(&base, &fresh, 25);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("with_recursive"));
    }

    #[test]
    fn compiled_checked_must_beat_interpreter_in_iterate_mode() {
        let base = map(&[]);
        let fresh = batch_ok(map(&[
            ("checked.interpreter", 1000),
            ("checked.with_iterate", 1200),
            // with_recursive is allowed to lose (not enforced).
            ("checked.with_recursive", 1500),
        ]));
        let failures = check(&base, &fresh, 25);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("checked.with_iterate"));
        let fresh = batch_ok(map(&[
            ("checked.interpreter", 1000),
            ("checked.with_iterate", 800),
        ]));
        assert!(check(&base, &fresh, 25).is_empty());
    }

    #[test]
    fn missing_batch_throughput_keys_fail() {
        // A bench refactor that silently drops the batch section must not
        // pass the gate, even with an empty baseline.
        let base = map(&[]);
        let fresh = tier_ok(index_ok(serve_ok(map(&[("fibonacci.interpreter", 1000)]))));
        let failures = check(&base, &fresh, 25);
        assert_eq!(failures.len(), 2, "{failures:?}");
        assert!(failures[0].contains("batch.fibonacci"));
        assert!(failures[1].contains("batch.checked"));
        // Half a pair missing is still a failure.
        let fresh = batch_ok(map(&[]));
        let mut fresh = fresh;
        fresh.remove("batch.checked.interp_ns_per_call");
        let failures = check(&base, &fresh, 25);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("batch.checked"));
    }

    #[test]
    fn batch_amortization_factors_enforced() {
        let base = map(&[]);
        // fibonacci at 4.5x (needs 5x) fails; checked at 2.4x passes.
        let fresh = tier_ok(index_ok(serve_ok(map(&[
            ("batch.fibonacci.compiled_ns_per_call", 1000),
            ("batch.fibonacci.interp_ns_per_call", 4500),
            ("batch.checked.compiled_ns_per_call", 4000),
            ("batch.checked.interp_ns_per_call", 9600),
        ]))));
        let failures = check(&base, &fresh, 25);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("batch.fibonacci"));
        assert!(failures[0].contains("4.50x"));
        // checked below its own 1.5x bar fails too.
        let fresh = tier_ok(index_ok(serve_ok(map(&[
            ("batch.fibonacci.compiled_ns_per_call", 700),
            ("batch.fibonacci.interp_ns_per_call", 4500),
            ("batch.checked.compiled_ns_per_call", 4000),
            ("batch.checked.interp_ns_per_call", 5000),
        ]))));
        let failures = check(&base, &fresh, 25);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("batch.checked"));
        // Both at their measured margins pass.
        assert!(check(&base, &batch_ok(map(&[])), 25).is_empty());
    }

    #[test]
    fn compiled_settle_must_beat_interpreter_in_both_modes() {
        // The materialize-once row loop flipped `settle`; the gate keeps it
        // flipped in both compiled modes.
        let base = map(&[]);
        let fresh = batch_ok(map(&[
            ("settle.interpreter", 1000),
            ("settle.with_recursive", 1100),
            ("settle.with_iterate", 900),
        ]));
        let failures = check(&base, &fresh, 25);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("settle.with_recursive"));
        let fresh = batch_ok(map(&[
            ("settle.interpreter", 1000),
            ("settle.with_recursive", 950),
            ("settle.with_iterate", 900),
        ]));
        assert!(check(&base, &fresh, 25).is_empty());
    }

    #[test]
    fn index_access_path_speedup_enforced() {
        let base = map(&[]);
        // point at 4x (needs 5x) fails; range stays at its 20x margin.
        let mut fresh = batch_ok(map(&[]));
        fresh.insert("index.point.indexed_ns".into(), 200_000);
        fresh.insert("index.point.seq_ns".into(), 800_000);
        let failures = check(&base, &fresh, 25);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("index.point"));
        assert!(failures[0].contains("4.00x"));
        // Half a pair missing is a failure — the index section must not be
        // droppable by a silent bench refactor.
        let mut fresh = batch_ok(map(&[]));
        fresh.remove("index.range.seq_ns");
        let failures = check(&base, &fresh, 25);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("index.range"));
        // settle_top is trajectory-only: a near-1x ratio there passes.
        let mut fresh = batch_ok(map(&[]));
        fresh.insert("index.settle_top.indexed_ns".into(), 8_900_000);
        assert!(check(&base, &fresh, 25).is_empty());
        // All pairs at their measured margins pass.
        assert!(check(&base, &batch_ok(map(&[])), 25).is_empty());
    }

    #[test]
    fn missing_serve_keys_fail() {
        // A run that skipped serve_bench must not pass the gate.
        let mut fresh = batch_ok(map(&[]));
        fresh.retain(|k, _| !k.starts_with("serve."));
        let failures = check(&map(&[]), &fresh, 25);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("run serve_bench before gating"));
    }

    #[test]
    fn read_scaling_enforced_on_multicore_runners() {
        // 4 hardware threads and only 1.8x scaling: readers are contending
        // on shared state — fail.
        let mut fresh = batch_ok(map(&[]));
        fresh.insert("serve.threads_available".into(), 4);
        fresh.insert("serve.read.scaling_x100".into(), 180);
        let failures = check(&map(&[]), &fresh, 25);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("serve.read.scaling_x100 = 180"));
        // Exactly at the bar passes.
        fresh.insert("serve.read.scaling_x100".into(), 250);
        assert!(check(&map(&[]), &fresh, 25).is_empty());
    }

    #[test]
    fn small_machines_get_the_no_collapse_floor() {
        // 1 hardware thread: 1.09x "scaling" is expected time-slicing, not
        // a contention bug — pass.
        let mut fresh = batch_ok(map(&[]));
        fresh.insert("serve.threads_available".into(), 1);
        fresh.insert("serve.read.scaling_x100".into(), 109);
        assert!(check(&map(&[]), &fresh, 25).is_empty());
        // But collapsing to 0.3x of single-thread throughput means the
        // locks serialize everything — fail even on one core.
        fresh.insert("serve.read.scaling_x100".into(), 30);
        let failures = check(&map(&[]), &fresh, 25);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("collapsed under contention"));
    }

    #[test]
    fn tier_speedup_enforced() {
        let base = map(&[]);
        // fibonacci at 1.4x (needs 1.5x) fails; fsa stays at its margin.
        let mut fresh = batch_ok(map(&[]));
        fresh.insert("tier.fibonacci.vm_ns_per_iter".into(), 280);
        fresh.insert("tier.fibonacci.mono_ns_per_iter".into(), 200);
        let failures = check(&base, &fresh, 25);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("tier.fibonacci"));
        assert!(failures[0].contains("1.40x"));
        // Half a pair missing is a failure — the tier section must not be
        // droppable by a silent bench refactor.
        let mut fresh = batch_ok(map(&[]));
        fresh.remove("tier.fsa.mono_ns_per_iter");
        let failures = check(&base, &fresh, 25);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("tier.fsa"));
        // Both pairs at their measured margins pass.
        assert!(check(&base, &batch_ok(map(&[])), 25).is_empty());
    }

    #[test]
    fn warm_cache_hit_rate_floor_enforced() {
        // A thrashing plan cache (hit rate below 90% in steady state)
        // fails even when throughput and latency look fine.
        let mut fresh = batch_ok(map(&[]));
        fresh.insert("serve.cache.warm_hit_rate_x100".into(), 62);
        let failures = check(&map(&[]), &fresh, 25);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("serve.cache.warm_hit_rate_x100 = 62"));
        // Exactly at the floor passes.
        fresh.insert("serve.cache.warm_hit_rate_x100".into(), 90);
        assert!(check(&map(&[]), &fresh, 25).is_empty());
    }

    #[test]
    fn zero_p99_is_a_broken_bench() {
        let mut fresh = batch_ok(map(&[]));
        fresh.insert("serve.mixed.p99_ns".into(), 0);
        let failures = check(&map(&[]), &fresh, 25);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("serve.mixed.p99_ns"));
    }

    #[test]
    fn serve_keys_stay_out_of_the_ns_regression_loop() {
        // serve.* numbers are higher-is-better and machine-dependent: a
        // baseline with a higher rps than fresh must NOT trip the generic
        // lower-is-better comparison, and serve ratios must not skew the
        // machine-scale median.
        let base = map(&[
            ("k.a", 1000),
            ("serve.read.rps_4t", 50_000),
            ("serve.read.scaling_x100", 390),
        ]);
        let mut fresh = batch_ok(map(&[("k.a", 1000)]));
        fresh.insert("serve.read.rps_4t".into(), 3000);
        fresh.insert("serve.read.scaling_x100".into(), 300);
        assert!(check(&base, &fresh, 25).is_empty());
        assert!(
            (scale_factor(&base, &fresh) - 1.0).abs() < 1e-9,
            "serve ratios must not move the machine-scale median"
        );
    }
}
