//! Ablations over the design choices DESIGN.md calls out:
//!
//! 1. execution mode: interpreter vs recursive SQL UDF (Figure 7, §2's
//!    "disappointing performance characteristics") vs WITH RECURSIVE vs
//!    WITH ITERATE,
//! 2. argument layout: flattened columns vs packed ROW (Figure 8),
//! 3. SSA optimization passes on/off.
//!
//! Usage: `cargo run --release -p plaway-bench --bin ablation [-- udf]`

use std::time::Instant;

use plaway_bench::*;
use plaway_common::Value;
use plaway_core::{ArgsLayout, CompileOptions, CteMode};
use plaway_engine::{EngineConfig, TierMode};

fn time_ms(f: impl FnMut()) -> f64 {
    let mut f = f;
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64() * 1e3
}

fn main() {
    let only_udf = std::env::args().any(|a| a == "udf");
    let steps = 2_000i64;
    let runs = 3;

    // ---- mode ablation on walk -----------------------------------------
    let mut b = setup_walk(EngineConfig::postgres_like());
    let args = walk_args(steps);
    let rec = b.compile(CompileOptions::default()).unwrap();
    let iter = b.compile(CompileOptions::iterate()).unwrap();
    let packed = b.compile(CompileOptions::packed()).unwrap();
    let raw = b
        .compile(CompileOptions {
            optimize: false,
            ..Default::default()
        })
        .unwrap();

    println!("ablation: walk(), {steps} steps, avg of {runs} runs (postgres profile)\n");

    let report = |name: &str, ms: f64, baseline: f64| {
        if baseline > 0.0 {
            println!(
                "{name:<34} {ms:>9.1} ms   ({:>4.0}% of interpreter)",
                ms / baseline * 100.0
            );
        } else {
            println!("{name:<34} {ms:>9.1} ms   (baseline)");
        }
    };

    b.session.set_seed(1);
    b.run_interp(&args).unwrap();
    b.session.set_seed(1);
    let interp_ms = {
        let samples = b.time_interp(&args, runs).unwrap();
        stats_ms(&samples).0
    };
    let baseline = interp_ms;
    report("PL/pgSQL interpreter", interp_ms, 0.0);

    // Recursive SQL UDF (Figure 7): pays Start/End per recursive call and
    // runs against the engine's call-depth limit, so measure fewer steps
    // and scale. The paper: "the direct evaluation of these UDFs has
    // disappointing performance characteristics".
    let udf_steps = 300i64;
    b.session.config.max_udf_depth = 2_000;
    rec.install_udfs(&mut b.session).unwrap();
    let call = format!("SELECT walk(ROW(2, 2), 1000000, -1000000, {udf_steps})");
    b.session.set_seed(1);
    b.session.run(&call).unwrap();
    b.session.set_seed(1);
    let udf_ms = time_ms(|| {
        for _ in 0..runs {
            b.session.run(&call).unwrap();
        }
    }) / runs as f64;
    let udf_scaled = udf_ms * (steps as f64 / udf_steps as f64);
    report(
        &format!("recursive SQL UDF (scaled from {udf_steps})"),
        udf_scaled,
        baseline,
    );

    for (name, compiled) in [
        ("WITH RECURSIVE (flattened args)", &rec),
        ("WITH ITERATE (flattened args)", &iter),
        ("WITH RECURSIVE (packed ROW args)", &packed),
        ("WITH RECURSIVE (unoptimized SSA)", &raw),
    ] {
        b.session.set_seed(1);
        let samples = b.time_compiled(compiled, &args, runs).unwrap();
        report(name, stats_ms(&samples).0, baseline);
    }

    if only_udf {
        return;
    }

    // ---- stack depth limit (the §2 claim) -------------------------------
    println!("\nrecursive SQL UDF vs the engine's stack depth limit:");
    b.session.config.max_udf_depth = 256; // back to the default
    let deep_call = "SELECT walk(ROW(2, 2), 1000000, -1000000, 5000)";
    match b.session.run(deep_call) {
        Err(e) => println!("  5000 steps via UDF: {e}"),
        Ok(_) => println!("  5000 steps via UDF: unexpectedly succeeded"),
    }
    b.session.set_seed(1);
    let v = rec.run(&mut b.session, &walk_args(5_000)).unwrap();
    println!("  5000 steps via WITH RECURSIVE: ok (result {v})");

    // ---- layout ablation on parse ---------------------------------------
    println!("\nablation: parse(), argument layouts (2000-char input):");
    let mut b = setup_parse(EngineConfig::postgres_like());
    let args = parse_args(2_000);
    for (name, options) in [
        ("flattened columns", CompileOptions::default()),
        ("packed ROW column", CompileOptions::packed()),
        (
            "packed + ITERATE",
            CompileOptions {
                layout: ArgsLayout::Packed,
                mode: CteMode::Iterate,
                ..Default::default()
            },
        ),
    ] {
        let compiled = b.compile(options).unwrap();
        let samples = b.time_compiled(&compiled, &args, runs).unwrap();
        println!("  {name:<28} {:>9.1} ms", stats_ms(&samples).0);
    }

    // ---- batch trampoline working set ------------------------------------
    // One WITH RETIRE fixpoint drives every call; the counters show the
    // working-set story: peak in-flight activations vs total retired.
    println!("\nbatch trampoline: fibonacci, 100000 calls through one fixpoint:");
    let mut b = setup_fib(EngineConfig::postgres_like());
    let compiled = b.compile(CompileOptions::iterate()).unwrap();
    let calls = batch_fib_calls(100_000);
    b.session.stats.batch = Default::default();
    let ms = time_ms(|| {
        compiled.run_batch(&mut b.session, &calls).unwrap();
    });
    let counters = b.session.stats.batch;
    println!(
        "  wall clock                   {ms:>9.1} ms   ({:.0} calls/sec)",
        calls.len() as f64 / (ms / 1e3)
    );
    println!(
        "  batch_rows_in_flight (peak)  {:>9}",
        counters.batch_rows_in_flight
    );
    println!(
        "  batch_rows_retired           {:>9}",
        counters.batch_rows_retired
    );

    // ---- execution tier per-iteration cost -------------------------------
    // The fused fixpoint transition in the `Value`-domain VM vs the typed
    // mono pipeline, on the two shape-recognized kernels. Total wall time
    // over the `recursive_iterations` delta gives ns per iteration — both
    // tiers run the same iterations on the same inputs, so the ratio is
    // exactly the dispatch + boxing the mono tier removes.
    println!("\ntiered execution: ns per fixpoint iteration, VM vs mono:");
    type TierCase = (&'static str, fn(EngineConfig) -> BenchSetup, Vec<Value>);
    let tier_cases: [TierCase; 2] = [
        ("fibonacci(500)", setup_fib, fib_args(500)),
        ("parse(150)", setup_parse, parse_args(150)),
    ];
    for (name, setup, args) in tier_cases {
        let mut per_iter = [0u128; 2];
        for (t, mode) in [TierMode::ForceOff, TierMode::ForceOn]
            .into_iter()
            .enumerate()
        {
            let mut config = EngineConfig::postgres_like();
            config.tier_mode = mode;
            let mut b = setup(config);
            let compiled = b.compile(CompileOptions::iterate()).unwrap();
            let plan = compiled.prepare(&mut b.session).unwrap();
            b.session.set_seed(1);
            let before = b.session.stats.recursive_iterations;
            b.session.execute_prepared(&plan, args.clone()).unwrap();
            let iters = ((b.session.stats.recursive_iterations - before) as u128).max(1);
            let mut best = u128::MAX;
            for _ in 0..5 {
                b.session.set_seed(1);
                let t0 = Instant::now();
                b.session.execute_prepared(&plan, args.clone()).unwrap();
                best = best.min(t0.elapsed().as_nanos());
            }
            per_iter[t] = best / iters;
        }
        println!(
            "  {name:<28} vm {:>6} ns/iter   mono {:>6} ns/iter   ({:.1}x)",
            per_iter[0],
            per_iter[1],
            per_iter[0] as f64 / per_iter[1] as f64
        );
    }
}
