//! Figure 3 (right edge): per-embedded-query profile of `walk()` with the
//! black `walk→Qi` context-switch share of each bar.
//!
//! Usage: `cargo run --release -p plaway-bench --bin profile_walk`

use plaway_bench::*;
use plaway_engine::EngineConfig;

fn main() {
    let mut b = setup_walk(EngineConfig::postgres_like());
    let args = walk_args(1_000);
    b.session.set_seed(1);
    b.run_interp(&args).unwrap(); // warm the plan cache
    b.session.track_queries = true;
    b.session.reset_instrumentation();
    b.session.set_seed(1);
    b.run_interp(&args).unwrap();

    let total: u128 = b.session.profiler.total_ns();
    println!("Figure 3: profile of one walk() invocation (1000 steps)");
    println!("bars: share of total run time; # = f->Qi switch share of the bar\n");

    // Order queries as they appear in the function body: Q1 policy lookup,
    // Q2 straying move, Q3 reward lookup.
    let mut entries: Vec<(String, plaway_engine::session::QueryPhaseStats)> = b
        .session
        .query_stats
        .iter()
        .map(|(sql, st)| (sql.clone(), *st))
        .collect();
    entries.sort_by_key(|(sql, _)| {
        if sql.contains("policy") {
            0
        } else if sql.contains("actions") {
            1
        } else if sql.contains("cells") {
            2
        } else {
            3
        }
    });
    for (sql, st) in entries {
        let label = if sql.contains("policy") {
            "Q1 (policy lookup)  "
        } else if sql.contains("actions") {
            "Q2 (straying move)  "
        } else if sql.contains("cells") {
            "Q3 (reward lookup)  "
        } else {
            "other               "
        };
        let share = st.total_ns() as f64 / total as f64 * 100.0;
        let switch = st.switch_pct();
        let width = (share / 2.0).round() as usize;
        let dark = (width as f64 * switch / 100.0).round() as usize;
        let bar: String = "#".repeat(dark) + &"=".repeat(width.saturating_sub(dark));
        println!("{label} {share:>6.2}%  |{bar:<50}| ({switch:>4.1}% switch overhead)");
    }
    let (s, r, e, i) = b.session.profiler.percentages();
    println!("\ntotals: Exec.Start {s:.2}% | Exec.Run {r:.2}% | Exec.End {e:.2}% | Interp {i:.2}%");
    println!("paper:  Q1 28.40% | Q2 54.02% | Q3 12.44%; walk->Qi overhead >35% of total");
}
