//! Fast smoke benchmark seeding the `BENCH_*.json` perf trajectory.
//!
//! Runs six small kernels — `walk` (query-per-step, the paper's headline),
//! `fibonacci` (query-less), `graph` (digraph traversal), `fsa`
//! (string-consuming automaton), `checked` (RAISE + EXCEPTION recovery per
//! iteration) and `settle` (FOR-over-query ledger fold) — in all three
//! execution modes:
//!
//! * `interpreter` — statement-by-statement PL/pgSQL interpretation,
//! * `with_recursive` — the compiled `WITH RECURSIVE` query,
//! * `with_iterate` — the compiled `WITH ITERATE` variant (Passing et al.).
//!
//! plus the batch-invocation throughput pairs
//! `batch.{fibonacci,checked}.{compiled,interp}_ns_per_call` — one
//! `WITH RETIRE` fixpoint over 10⁵ invocations vs a loop of independent
//! interpreted calls (each paying the modeled executor lifecycle) —
//! and the access-path pairs `index.{point,range,settle_top}.{indexed,seq}_ns`
//! — the same statement over a 10⁵-row indexed ledger in an `Auto` session
//! (index scans on) vs a `ForceOff` twin (always seq scan) — and the
//! tiered-execution pairs `tier.{fibonacci,fsa}.{vm,mono}_ns_per_iter`:
//! the two shape-recognized fixpoints per iteration, in the `Value` VM
//! (`TierMode::ForceOff`) vs the typed mono pipeline (`ForceOn`).
//!
//! Writes `BENCH_smoke.json` ({kernel.mode → median ns}, keys sorted so
//! baseline diffs are stable) to the current directory; CI's `bench-gate`
//! job compares the fresh numbers against the committed baseline.
//!
//! Usage: `cargo run --release -p plaway-bench --bin bench_smoke`

use std::time::Instant;

use plaway_bench::{
    batch_checked_calls, batch_fib_calls, checked_args, fib_args, parse_args, settle_args,
    setup_checked, setup_fib, setup_index_sessions, setup_parse, setup_settle, setup_settle_top,
    setup_traverse, setup_walk, traverse_args, walk_args, BenchSetup,
};
use plaway_common::Value;
use plaway_core::CompileOptions;
use plaway_engine::{EngineConfig, IndexMode, ParamScope, TierMode};

const WARMUP_RUNS: usize = 3;
const MEASURED_RUNS: usize = 15;

/// Invocations per batch-throughput query (the ≥ 10⁵ regime the batch
/// trampoline targets).
const BATCH_ROWS: usize = 100_000;
/// The interpreted loop is ~7× slower per call, so it is sampled.
const BATCH_INTERP_SAMPLE: usize = 10_000;

/// Median of per-run wall times, in nanoseconds.
fn median_ns(mut samples: Vec<u128>) -> u128 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Time a closure over warmup + measured runs; returns median ns.
fn time_runs(mut f: impl FnMut()) -> u128 {
    for _ in 0..WARMUP_RUNS {
        f();
    }
    let samples = (0..MEASURED_RUNS)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos()
        })
        .collect();
    median_ns(samples)
}

/// All three modes for one kernel. Every compiled mode goes through the
/// normalized `Compiled::prepare` + `Session::execute_prepared` path.
fn smoke_kernel(
    kernel: &str,
    b: &mut BenchSetup,
    args: &[Value],
    results: &mut Vec<(String, u128)>,
) {
    let interp_args = args.to_vec();
    let ns = time_runs(|| {
        b.session.set_seed(1);
        b.run_interp(&interp_args).unwrap();
    });
    results.push((format!("{kernel}.interpreter"), ns));

    for (mode, options) in [
        ("with_recursive", CompileOptions::default()),
        ("with_iterate", CompileOptions::iterate()),
    ] {
        let compiled = b.compile(options).unwrap();
        let plan = compiled.prepare(&mut b.session).unwrap();
        let ns = time_runs(|| {
            b.session.set_seed(1);
            b.session.execute_prepared(&plan, args.to_vec()).unwrap();
        });
        results.push((format!("{kernel}.{mode}"), ns));
    }
}

/// Batch throughput: one `WITH RETIRE` fixpoint driving all `calls`
/// (compiled) vs a loop of independent interpreted calls, each paying the
/// modeled executor lifecycle. The batch input table is loaded and the
/// plan cached before timing — the paper's scenario of applying a UDF to
/// a table that already exists — so the timed region is exactly the per-
/// query work each architecture repeats. Keys are integer ns *per call*.
fn smoke_batch(
    kernel: &str,
    b: &mut BenchSetup,
    calls: &[Vec<Value>],
    results: &mut Vec<(String, u128)>,
) {
    let compiled = b.compile(CompileOptions::iterate()).unwrap();
    let plan = compiled.prepare_batch(&mut b.session, calls).unwrap();
    let ns = time_runs(|| {
        b.session.execute_prepared(&plan, Vec::new()).unwrap();
    });
    results.push((
        format!("batch.{kernel}.compiled_ns_per_call"),
        ns / calls.len() as u128,
    ));

    let sample = &calls[..BATCH_INTERP_SAMPLE.min(calls.len())];
    let ns = time_runs(|| {
        b.interp_loop(sample).unwrap();
    });
    results.push((
        format!("batch.{kernel}.interp_ns_per_call"),
        ns / sample.len() as u128,
    ));
}

/// Cost-based access paths: the same prepared aggregate over the 10⁵-row
/// indexed ledger, planned in an `Auto` session (index access paths on)
/// and a `ForceOff` twin sharing the same database (always seq scan).
/// Both modes must return identical rows — a wrong-but-fast probe would
/// poison the trajectory. `bench_gate` enforces the ≥ 5× win on the
/// point and range pairs; the `settle_top` kernel pair is trajectory-only
/// (its fixpoint fold dominates the scan, so the ratio is modest).
fn smoke_index(results: &mut Vec<(String, u128)>) {
    let (mut indexed, mut seq) = setup_index_sessions(EngineConfig::postgres_like());
    for (probe, sql) in [
        (
            "point",
            "SELECT count(*), sum(l.kind) FROM ledger AS l WHERE l.amount = 37",
        ),
        (
            "range",
            "SELECT count(*), sum(l.kind) FROM ledger AS l \
             WHERE l.amount >= 90 AND l.amount < 96",
        ),
    ] {
        let mut reference = None;
        for (mode, s) in [("indexed", &mut indexed), ("seq", &mut seq)] {
            let plan = s.prepare(sql, &ParamScope::new(Vec::new())).unwrap();
            let got = s.execute_prepared(&plan, Vec::new()).unwrap().rows;
            match &reference {
                None => reference = Some(got),
                Some(want) => assert_eq!(&got, want, "index.{probe}: access paths disagree"),
            }
            let ns = time_runs(|| {
                s.execute_prepared(&plan, Vec::new()).unwrap();
            });
            results.push((format!("index.{probe}.{mode}_ns"), ns));
        }
    }

    // The selective settle kernel at the same scale, compiled, both modes.
    for (mode, index_mode) in [("indexed", IndexMode::Auto), ("seq", IndexMode::ForceOff)] {
        let mut b = setup_settle_top(EngineConfig::postgres_like());
        b.session.config.index_mode = index_mode;
        let compiled = b.compile(CompileOptions::default()).unwrap();
        let plan = compiled.prepare(&mut b.session).unwrap();
        let args = settle_args();
        let ns = time_runs(|| {
            b.session.execute_prepared(&plan, args.clone()).unwrap();
        });
        results.push((format!("index.settle_top.{mode}_ns"), ns));
    }
}

/// Tiered execution: the two shape-recognized kernels per iteration, with
/// the tier pinned both ways. `ForceOff` keeps every fixpoint in the
/// `Value`-domain VM; `ForceOn` promotes the transition to the typed mono
/// pipeline before the first iteration. Per-iteration ns (total wall time
/// over the fixpoint's `recursive_iterations` delta) is the honest unit —
/// both tiers run the same number of iterations on the same inputs, so
/// the ratio isolates exactly the dispatch + boxing the mono tier
/// removes. Both tiers must return identical rows, and `ForceOn` must
/// actually promote — an unpromoted "mono" number would gate nothing.
fn smoke_tier(results: &mut Vec<(String, u128)>) {
    type TierCase = (&'static str, fn(EngineConfig) -> BenchSetup, Vec<Value>);
    let cases: [TierCase; 2] = [
        ("fibonacci", setup_fib, fib_args(500)),
        ("fsa", setup_parse, parse_args(150)),
    ];
    for (name, setup, args) in cases {
        let mut reference = None;
        for (tier, mode) in [("vm", TierMode::ForceOff), ("mono", TierMode::ForceOn)] {
            let mut config = EngineConfig::postgres_like();
            config.tier_mode = mode;
            let mut b = setup(config);
            let compiled = b.compile(CompileOptions::iterate()).unwrap();
            let plan = compiled.prepare(&mut b.session).unwrap();
            b.session.set_seed(1);
            let before = b.session.stats.recursive_iterations;
            let got = b.session.execute_prepared(&plan, args.clone()).unwrap();
            let iters = ((b.session.stats.recursive_iterations - before) as u128).max(1);
            match &reference {
                None => reference = Some(got.rows),
                Some(want) => assert_eq!(&got.rows, want, "tier.{name}: tiers disagree"),
            }
            if tier == "mono" {
                assert!(
                    b.session.metrics.tier_promotions > 0,
                    "tier.{name}: ForceOn never promoted — the mono number would be a lie"
                );
            }
            let ns = time_runs(|| {
                b.session.set_seed(1);
                b.session.execute_prepared(&plan, args.clone()).unwrap();
            });
            results.push((format!("tier.{name}.{tier}_ns_per_iter"), ns / iters));
        }
    }
}

fn main() {
    let mut results: Vec<(String, u128)> = Vec::new();

    let mut walk = setup_walk(EngineConfig::postgres_like());
    smoke_kernel("walk", &mut walk, &walk_args(100), &mut results);

    let mut fib = setup_fib(EngineConfig::postgres_like());
    smoke_kernel("fibonacci", &mut fib, &fib_args(500), &mut results);

    let mut graph = setup_traverse(EngineConfig::postgres_like());
    smoke_kernel("graph", &mut graph, &traverse_args(40), &mut results);

    let mut fsa = setup_parse(EngineConfig::postgres_like());
    smoke_kernel("fsa", &mut fsa, &parse_args(150), &mut results);

    let mut checked = setup_checked(EngineConfig::postgres_like());
    smoke_kernel("checked", &mut checked, &checked_args(200), &mut results);

    let mut settle = setup_settle(EngineConfig::postgres_like());
    smoke_kernel("settle", &mut settle, &settle_args(), &mut results);

    // Batch throughput (the calls/sec story): 10⁵ invocations per query.
    smoke_batch(
        "fibonacci",
        &mut fib,
        &batch_fib_calls(BATCH_ROWS),
        &mut results,
    );
    smoke_batch(
        "checked",
        &mut checked,
        &batch_checked_calls(BATCH_ROWS),
        &mut results,
    );

    // Index access paths (the seq-vs-index story): 10⁵-row indexed ledger.
    smoke_index(&mut results);

    // Tiered execution (the VM-vs-mono story): per-iteration ns, both tiers.
    smoke_tier(&mut results);

    // Deterministic key order so baseline diffs (and the CI gate) are stable.
    results.sort_by(|(a, _), (b, _)| a.cmp(b));

    let mut json = String::from("{\n");
    for (i, (key, ns)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        json.push_str(&format!("  \"{key}\": {ns}{comma}\n"));
    }
    json.push_str("}\n");

    std::fs::write("BENCH_smoke.json", &json).expect("write BENCH_smoke.json");
    print!("{json}");
    eprintln!(
        "wrote BENCH_smoke.json ({} entries, median ns)",
        results.len()
    );
}
