//! Multi-session serving benchmark: M threads hammer one shared
//! [`Database`] with the mixed kernel load (`fibonacci`, `checked_sum`,
//! `settle`, `walk`), each thread owning a private `Session` over the
//! shared catalog snapshots and plan cache.
//!
//! Two phases:
//!
//! * **read scaling** — scalar-only requests at 1 and 4 threads over an
//!   unchanging catalog (every prepared plan stays valid, the shared plan
//!   cache serves all sessions). The headline number is
//!   `serve.read.scaling_x100` = 100 × rps(4t) / rps(1t); the bench gate
//!   enforces ≥ 2.5× on runners with ≥ 4 hardware threads.
//! * **mixed** — 4 reader threads (scalar calls through plans prepared
//!   once per session, every 8th request a batch-mode `fibonacci` over a
//!   worker-private staging table) racing one writer that churns the
//!   catalog with `CREATE OR REPLACE` and DML. Every commit bumps the
//!   catalog version and invalidates the shared plan cache; the batch
//!   path re-prepares through it, so this phase measures serving under
//!   churn — correctness (results still verified per request) and tail
//!   latency, not peak throughput.
//!
//! Phase 1 also reports `serve.cache.warm_hit_rate_x100`: the plan-cache
//! hit-rate over the read phase alone, measured as a counter delta after
//! a one-session warm-up pass. Under an unchanging catalog a serving
//! tier should not re-plan at all, so the gate holds this near 100.
//!
//! A third, ungated phase re-runs a short read burst on a trace-enabled
//! database and attributes tail latency per session from the structured
//! `run` events (stderr report only).
//!
//! Results are merged into `BENCH_smoke.json` as integer `serve.*` keys
//! (latencies in ns, rps as integer requests/second, the scaling ratio
//! ×100, plan-cache counters as `serve.cache.*`), preserving the kernel
//! keys `bench_smoke` wrote.
//!
//! Usage: `cargo run --release -p plaway-bench --bin serve_bench [--smoke]`

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use plaway_bench::{batch_fib_calls, serve_batch_fib, setup_serve, ServeKernel};
use plaway_engine::{Database, EngineConfig};
use plaway_workloads::fib;

/// Requests per reader thread per phase.
const READS_FULL: usize = 400;
const READS_SMOKE: usize = 100;
/// Rows per batch-mode call in the mixed phase.
const BATCH_ROWS: usize = 64;
/// Reader threads in the scaled phases.
const THREADS: usize = 4;

/// One reader's measurement: per-request latencies plus its wall time.
struct ThreadRun {
    latencies_ns: Vec<u128>,
    elapsed: Duration,
}

/// Run `requests` scalar calls round-robin over the kernels, verifying
/// every deterministic result. Panics (failing the bench) on any wrong
/// answer — a serving engine that returns garbage fast is not fast.
fn read_loop(db: &Arc<Database>, kernels: &[ServeKernel], requests: usize) -> ThreadRun {
    let mut session = db.session();
    let plans: Vec<_> = kernels
        .iter()
        .map(|k| k.compiled.prepare(&mut session).expect(k.name))
        .collect();
    let mut latencies_ns = Vec::with_capacity(requests);
    let t0 = Instant::now();
    for r in 0..requests {
        let k = &kernels[r % kernels.len()];
        let q0 = Instant::now();
        let got = session
            .execute_prepared(&plans[r % kernels.len()], k.args.clone())
            .expect(k.name);
        latencies_ns.push(q0.elapsed().as_nanos());
        if let Some(want) = &k.expected {
            assert_eq!(&got.rows[0][0], want, "{} returned a wrong answer", k.name);
        }
    }
    ThreadRun {
        latencies_ns,
        elapsed: t0.elapsed(),
    }
}

/// A mixed-phase reader: scalar calls through plans prepared *once* per
/// session (a serving session keeps its statements prepared; it does not
/// re-plan an unchanged query per request), with every 8th request a
/// batch-mode fibonacci staged through this worker's private
/// `batch#fib_w<id>` table. The batch path commits, so it re-plans
/// through the shared cache against whatever catalog version the churn
/// writer has reached — that is where the re-planning cost of this phase
/// is measured, not in the scalar stream.
fn mixed_loop(
    db: &Arc<Database>,
    kernels: &[ServeKernel],
    worker: usize,
    requests: usize,
) -> ThreadRun {
    let mut session = db.session();
    let plans: Vec<_> = kernels
        .iter()
        .map(|k| k.compiled.prepare(&mut session).expect(k.name))
        .collect();
    let batch = serve_batch_fib(db, worker);
    let calls = batch_fib_calls(BATCH_ROWS);
    let batch_expected: Vec<_> = calls
        .iter()
        .map(|args| plaway_common::Value::Int(fib::fib_reference(args[0].as_int().unwrap())))
        .collect();
    let mut latencies_ns = Vec::with_capacity(requests);
    let t0 = Instant::now();
    for r in 0..requests {
        let q0 = Instant::now();
        if r % 8 == 7 {
            let got = batch.run_batch(&mut session, &calls).expect("batch fib");
            latencies_ns.push(q0.elapsed().as_nanos());
            assert_eq!(got, batch_expected, "batch fib returned wrong answers");
        } else {
            let k = &kernels[r % kernels.len()];
            let got = session
                .execute_prepared(&plans[r % kernels.len()], k.args.clone())
                .expect(k.name);
            latencies_ns.push(q0.elapsed().as_nanos());
            if let Some(want) = &k.expected {
                assert_eq!(&got.rows[0][0], want, "{} returned a wrong answer", k.name);
            }
        }
    }
    ThreadRun {
        latencies_ns,
        elapsed: t0.elapsed(),
    }
}

/// The churn writer: redefines a noise function and rewrites the `churn`
/// table until told to stop. Every commit invalidates the shared plan
/// cache, so the readers constantly re-plan.
fn churn_writer(db: &Arc<Database>, stop: &AtomicBool) -> u64 {
    let mut session = db.session();
    let mut commits = 0u64;
    let mut i = 0i64;
    while !stop.load(Ordering::Relaxed) {
        i += 1;
        session
            .run(&format!(
                "CREATE OR REPLACE FUNCTION churn_noise(x int) RETURNS int \
                 AS $$ SELECT x + {i} $$ LANGUAGE SQL"
            ))
            .expect("churn DDL");
        session
            .run(&format!("INSERT INTO churn VALUES ({i}, {i})"))
            .expect("churn insert");
        if i % 16 == 0 {
            session
                .run(&format!("DELETE FROM churn WHERE k <= {}", i - 16))
                .expect("churn delete");
            commits += 1;
        }
        commits += 2;
        // Yield so the readers make progress even on a single core.
        std::thread::sleep(Duration::from_millis(2));
    }
    commits
}

/// Fan `THREADS` copies of `f` out, synchronized on a barrier, and merge
/// their runs. Aggregate rps divides total requests by the *slowest*
/// thread's wall time — the honest number for "all threads done".
fn fan_out(threads: usize, f: impl Fn(usize) -> ThreadRun + Sync) -> (u128, Vec<u128>) {
    let barrier = Barrier::new(threads);
    let runs: Vec<ThreadRun> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let barrier = &barrier;
                let f = &f;
                scope.spawn(move || {
                    barrier.wait();
                    f(w)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let total: usize = runs.iter().map(|r| r.latencies_ns.len()).sum();
    let slowest = runs.iter().map(|r| r.elapsed).max().unwrap();
    let rps = (total as f64 / slowest.as_secs_f64()) as u128;
    let mut latencies: Vec<u128> = runs.into_iter().flat_map(|r| r.latencies_ns).collect();
    latencies.sort_unstable();
    (rps, latencies)
}

/// Nearest-rank percentile over a sorted sample.
fn percentile(sorted: &[u128], pct: usize) -> u128 {
    sorted[(sorted.len() - 1) * pct / 100]
}

/// Extract one unsigned integer field from a JSON-lines trace event
/// (hand-rolled; the trace writer emits flat one-line objects).
fn trace_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Re-run a short read phase on a trace-enabled database and attribute
/// tail latency per session from the structured `run` events. This is the
/// consumption side of the engine's trace mode: the report (stderr only —
/// wall times are machine-dependent, so nothing here is gated) shows which
/// session/thread paid the p99, which aggregate percentiles cannot.
fn trace_attribution(requests: usize) {
    let config = EngineConfig {
        trace: true,
        ..EngineConfig::postgres_like()
    };
    let (db, kernels) = setup_serve(config);
    fan_out(THREADS, |_| read_loop(&db, &kernels, requests));
    let lines = db.take_trace();
    let mut per_session: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for line in &lines {
        if line.contains("\"event\":\"run\"") {
            if let (Some(sid), Some(ns)) = (trace_u64(line, "session"), trace_u64(line, "ns")) {
                per_session.entry(sid).or_default().push(ns);
            }
        }
    }
    eprintln!("trace attribution ({} events):", lines.len());
    for (sid, mut ns) in per_session {
        ns.sort_unstable();
        eprintln!(
            "  session {sid}: {} runs, p50 {} ns, p99 {} ns",
            ns.len(),
            ns[(ns.len() - 1) * 50 / 100],
            ns[(ns.len() - 1) * 99 / 100],
        );
    }
}

/// Parse the flat `{"key": int}` JSON `bench_smoke` writes (same
/// hand-rolled format as `bench_gate`; the container has no serde).
fn parse_bench_json(text: &str) -> BTreeMap<String, u128> {
    let mut out = BTreeMap::new();
    let Some(body) = text
        .trim()
        .strip_prefix('{')
        .and_then(|b| b.strip_suffix('}'))
    else {
        return out;
    };
    for line in body.split(',') {
        if let Some((key, value)) = line.trim().split_once(':') {
            let key = key.trim().trim_matches('"');
            if let Ok(v) = value.trim().parse::<u128>() {
                out.insert(key.to_string(), v);
            }
        }
    }
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let requests = if smoke { READS_SMOKE } else { READS_FULL };
    let threads_available = std::thread::available_parallelism().map_or(1, |n| n.get());

    eprintln!(
        "serve_bench: {requests} requests/thread, {threads_available} hardware threads{}",
        if smoke { " (smoke)" } else { "" }
    );

    let (db, kernels) = setup_serve(EngineConfig::postgres_like());
    let mut results: BTreeMap<String, u128> = BTreeMap::new();
    results.insert("serve.threads_available".into(), threads_available as u128);

    // Warm the shared plan cache once so phase 1 measures steady-state
    // serving: without this, each phase's first session pays the cold
    // compile misses and the reported hit-rate mostly measures start-up,
    // not serving.
    {
        let mut warm = db.session();
        for k in &kernels {
            k.compiled.prepare(&mut warm).expect(k.name);
        }
    }
    let cache_before = db.plan_cache_stats();

    // Phase 1: read scaling, scalar-only, catalog untouched.
    let (rps_1t, _) = fan_out(1, |_| read_loop(&db, &kernels, requests));
    let (rps_4t, lat_4t) = fan_out(THREADS, |_| read_loop(&db, &kernels, requests));
    eprintln!("read: {rps_1t} req/s at 1 thread, {rps_4t} req/s at {THREADS} threads");
    results.insert("serve.read.rps_1t".into(), rps_1t);
    results.insert("serve.read.rps_4t".into(), rps_4t);
    results.insert(
        "serve.read.scaling_x100".into(),
        rps_4t * 100 / rps_1t.max(1),
    );
    results.insert("serve.read.p50_ns".into(), percentile(&lat_4t, 50));
    results.insert("serve.read.p95_ns".into(), percentile(&lat_4t, 95));
    results.insert("serve.read.p99_ns".into(), percentile(&lat_4t, 99));

    // Warm hit-rate: the plan-cache counter delta over phase 1 alone. The
    // catalog never moves during the read phase and the cache was warmed
    // above, so every per-session prepare should hit — this is the number
    // that says "a warm serving tier does not re-plan", uncontaminated by
    // cold start-up or by phase-2 churn (which invalidates on purpose).
    let cache_read = db.plan_cache_stats();
    let warm_hits = cache_read.hits - cache_before.hits;
    let warm_misses = cache_read.misses - cache_before.misses;
    let warm_rate = warm_hits * 100 / (warm_hits + warm_misses).max(1);
    eprintln!("read-phase plan cache: {warm_hits} hits, {warm_misses} misses ({warm_rate}% warm)");
    results.insert("serve.cache.warm_hit_rate_x100".into(), warm_rate as u128);

    // Phase 2: mixed load under catalog churn.
    let stop = AtomicBool::new(false);
    let (rps_mixed, lat_mixed, commits) = std::thread::scope(|scope| {
        let writer = scope.spawn(|| churn_writer(&db, &stop));
        let out = fan_out(THREADS, |w| mixed_loop(&db, &kernels, w, requests));
        stop.store(true, Ordering::Relaxed);
        let commits = writer.join().unwrap();
        (out.0, out.1, commits)
    });
    eprintln!("mixed: {rps_mixed} req/s at {THREADS} threads, {commits} writer commits");
    results.insert("serve.mixed.rps_4t".into(), rps_mixed);
    results.insert("serve.mixed.p50_ns".into(), percentile(&lat_mixed, 50));
    results.insert("serve.mixed.p95_ns".into(), percentile(&lat_mixed, 95));
    results.insert("serve.mixed.p99_ns".into(), percentile(&lat_mixed, 99));
    results.insert("serve.mixed.writer_commits".into(), commits as u128);

    // Engine-wide metrics after both phases: the plan-cache counters feed
    // the hit-rate column of `scripts/bench_diff.sh`. The full snapshot
    // JSON goes to stderr for inspection; only the cache keys are merged
    // (the other registry fields are machine-load-dependent).
    let metrics = db.metrics();
    eprintln!("metrics: {}", metrics.to_json());
    results.insert("serve.cache.hits".into(), metrics.plan_cache.hits as u128);
    results.insert(
        "serve.cache.misses".into(),
        metrics.plan_cache.misses as u128,
    );
    results.insert(
        "serve.cache.evictions".into(),
        metrics.plan_cache.evictions as u128,
    );

    // Phase 3: trace-mode tail-latency attribution (stderr report only).
    trace_attribution(requests.min(50));

    // Merge into BENCH_smoke.json: keep bench_smoke's kernel keys, replace
    // any previous serve.* section.
    let mut merged = std::fs::read_to_string("BENCH_smoke.json")
        .map(|t| parse_bench_json(&t))
        .unwrap_or_default();
    merged.retain(|k, _| !k.starts_with("serve."));
    merged.extend(results);

    let mut json = String::from("{\n");
    for (i, (key, v)) in merged.iter().enumerate() {
        let comma = if i + 1 < merged.len() { "," } else { "" };
        json.push_str(&format!("  \"{key}\": {v}{comma}\n"));
    }
    json.push_str("}\n");
    std::fs::write("BENCH_smoke.json", &json).expect("write BENCH_smoke.json");
    print!("{json}");
    eprintln!(
        "merged serve.* into BENCH_smoke.json ({} entries)",
        merged.len()
    );
}
