//! Figure 10: iterative PL/SQL vs recursive SQL — wall clock time for one
//! walk() invocation across intra-function iteration counts.
//!
//! Usage: `cargo run --release -p plaway-bench --bin figure10 [runs]`
//! (default 10 runs per point, as in the paper)

use plaway_bench::*;
use plaway_core::CompileOptions;
use plaway_engine::EngineConfig;

fn main() {
    let runs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let mut b = setup_walk(EngineConfig::postgres_like());
    let compiled = b.compile(CompileOptions::default()).unwrap();

    println!("Figure 10: wall clock per walk() invocation, avg [min..max] of {runs} runs\n");
    println!(
        "{:>11} | {:>26} | {:>26} | {:>5}",
        "#iterations", "PL/SQL (ms)", "WITH RECURSIVE (ms)", "rel"
    );
    println!("{:->11}-+-{:->26}-+-{:->26}-+-{:->5}", "", "", "", "");

    for steps in [10_000i64, 25_000, 50_000, 75_000, 100_000] {
        let args = walk_args(steps);
        b.session.set_seed(1);
        b.run_interp(&args).unwrap(); // warm
        b.session.set_seed(1);
        let interp = b.time_interp(&args, runs).unwrap();
        b.session.set_seed(1);
        let sql = b.time_compiled(&compiled, &args, runs).unwrap();
        let (im, imin, imax) = stats_ms(&interp);
        let (sm, smin, smax) = stats_ms(&sql);
        println!(
            "{steps:>11} | {:>26} | {:>26} | {:>4.0}%",
            format!("{im:8.1} [{imin:8.1}..{imax:8.1}]"),
            format!("{sm:8.1} [{smin:8.1}..{smax:8.1}]"),
            sm / im * 100.0
        );
    }
    println!("\npaper: recursive SQL at ~57% of PL/SQL (43% savings) across 10k..100k");
}
