//! Table 2: eliminating buffering effort via WITH ITERATE.
//!
//! Buffer page writes while `parse()` consumes inputs of growing length:
//! `WITH RECURSIVE` accumulates every residual string (quadratic bytes),
//! `WITH ITERATE` keeps only the final iteration (zero).
//!
//! Usage: `cargo run --release -p plaway-bench --bin table2 [--full]`
//! (--full runs the paper's 10k..50k lengths; default stops at 30k to be
//! kind to memory — the trace is held in RAM here, on disk in PostgreSQL)

use plaway_bench::*;
use plaway_core::CompileOptions;
use plaway_engine::EngineConfig;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let lengths: &[usize] = if full {
        &[10_000, 20_000, 30_000, 40_000, 50_000]
    } else {
        &[10_000, 20_000, 30_000]
    };
    // Paper's measured page-write counts for comparison.
    let paper = [6_132u64, 24_471, 55_016, 97_769, 152_729];

    let mut b = setup_parse(EngineConfig::postgres_like());
    let recursive = b.compile(CompileOptions::default()).unwrap();
    let iterate = b.compile(CompileOptions::iterate()).unwrap();

    println!("Table 2: buffer page writes (8 KiB pages, work_mem = 4MB)\n");
    println!(
        "{:>12} | {:>12} | {:>14} | {:>14}",
        "#iterations", "WITH ITERATE", "WITH RECURSIVE", "paper RECURSIVE"
    );
    println!("{:->12}-+-{:->12}-+-{:->14}-+-{:->14}", "", "", "", "");

    for (i, &n) in lengths.iter().enumerate() {
        let args = parse_args(n);

        b.session.reset_instrumentation();
        iterate.run(&mut b.session, &args).unwrap();
        let iter_pages = b.session.buffers.page_writes;

        b.session.reset_instrumentation();
        recursive.run(&mut b.session, &args).unwrap();
        let rec_pages = b.session.buffers.page_writes;

        println!(
            "{n:>12} | {iter_pages:>12} | {rec_pages:>14} | {:>14}",
            paper[i]
        );
    }
    println!("\npaper: ITERATE writes 0 pages at every length; RECURSIVE grows");
    println!("quadratically (bytes ~ n^2/2 of residual strings + 24B tuple headers).");
}
