//! Criterion wrappers over the paper's measurement kernels.
//!
//! Kept intentionally small (10 samples, 1s measurement) so that
//! `cargo bench --workspace` finishes in minutes; the table/figure binaries
//! are the full-fidelity harnesses.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use plaway_bench::*;
use plaway_core::CompileOptions;
use plaway_engine::EngineConfig;

fn bench_walk_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("walk_500_steps");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    let mut b = setup_walk(EngineConfig::postgres_like());
    let args = walk_args(500);
    group.bench_function("interpreter", |bench| {
        bench.iter(|| {
            b.session.set_seed(1);
            b.run_interp(&args).unwrap()
        })
    });
    let rec = b.compile(CompileOptions::default()).unwrap();
    let plan = rec.prepare(&mut b.session).unwrap();
    group.bench_function("with_recursive", |bench| {
        bench.iter(|| {
            b.session.set_seed(1);
            b.session.execute_prepared(&plan, args.to_vec()).unwrap()
        })
    });
    let iter = b.compile(CompileOptions::iterate()).unwrap();
    let plan_it = iter.prepare(&mut b.session).unwrap();
    group.bench_function("with_iterate", |bench| {
        bench.iter(|| {
            b.session.set_seed(1);
            b.session.execute_prepared(&plan_it, args.to_vec()).unwrap()
        })
    });
    group.finish();
}

fn bench_parse_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("parse_1000_chars");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    let mut b = setup_parse(EngineConfig::postgres_like());
    let args = parse_args(1_000);
    group.bench_function("interpreter", |bench| {
        bench.iter(|| b.run_interp(&args).unwrap())
    });
    let rec = b.compile(CompileOptions::default()).unwrap();
    let plan = rec.prepare(&mut b.session).unwrap();
    group.bench_function("with_recursive", |bench| {
        bench.iter(|| b.session.execute_prepared(&plan, args.to_vec()).unwrap())
    });
    let iter = b.compile(CompileOptions::iterate()).unwrap();
    let plan_it = iter.prepare(&mut b.session).unwrap();
    group.bench_function("with_iterate", |bench| {
        bench.iter(|| b.session.execute_prepared(&plan_it, args.to_vec()).unwrap())
    });
    group.finish();
}

fn bench_fib(c: &mut Criterion) {
    let mut group = c.benchmark_group("fibonacci_10000");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    let mut b = setup_fib(EngineConfig::postgres_like());
    let args = fib_args(10_000);
    group.bench_function("interpreter_fast_path", |bench| {
        bench.iter(|| b.run_interp(&args).unwrap())
    });
    let rec = b.compile(CompileOptions::default()).unwrap();
    let plan = rec.prepare(&mut b.session).unwrap();
    group.bench_function("with_recursive", |bench| {
        bench.iter(|| b.session.execute_prepared(&plan, args.to_vec()).unwrap())
    });
    group.finish();
}

fn bench_compile_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile_pipeline");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));

    let b = setup_walk(EngineConfig::postgres_like());
    group.bench_function("walk_to_with_recursive", |bench| {
        bench.iter(|| b.compile(CompileOptions::default()).unwrap())
    });
    group.finish();
}

fn bench_engine_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));

    let mut s = plaway_engine::Session::new(EngineConfig::raw());
    s.run("CREATE TABLE t (k int, v int)").unwrap();
    for chunk in 0..10 {
        let rows: Vec<String> = (0..100)
            .map(|i| format!("({}, {})", chunk * 100 + i, i * 7))
            .collect();
        s.run(&format!("INSERT INTO t VALUES {}", rows.join(", ")))
            .unwrap();
    }
    s.run("CREATE INDEX t_k ON t (k)").unwrap();

    let ps = plaway_engine::ParamScope::new(vec!["needle".into()]);
    let point = s.prepare("SELECT v FROM t WHERE k = needle", &ps).unwrap();
    group.bench_function("point_lookup_lifecycle", |bench| {
        bench.iter(|| {
            s.execute_prepared(&point, vec![plaway_common::Value::Int(531)])
                .unwrap()
        })
    });

    let ps = plaway_engine::ParamScope::default();
    let agg = s
        .prepare("SELECT k % 10, sum(v) FROM t GROUP BY k % 10", &ps)
        .unwrap();
    group.bench_function("grouped_aggregate_1000_rows", |bench| {
        bench.iter(|| s.execute_prepared(&agg, vec![]).unwrap())
    });

    let cte = s
        .prepare(
            "WITH RECURSIVE c(x) AS (SELECT 1 UNION ALL SELECT x + 1 FROM c WHERE x < 1000) \
             SELECT count(*) FROM c",
            &ps,
        )
        .unwrap();
    group.bench_function("recursive_cte_1000_iters", |bench| {
        bench.iter(|| s.execute_prepared(&cte, vec![]).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_walk_modes,
    bench_parse_modes,
    bench_fib,
    bench_compile_pipeline,
    bench_engine_primitives
);
criterion_main!(benches);
